/**
 * @file
 * Focused tests for the canonical Huffman coder underlying SC: code
 * optimality properties, escape handling, determinism and edge cases.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "compress/huffman.hh"

using namespace latte;

TEST(Huffman, EmptyFrequenciesStillBuildEscapeOnly)
{
    const HuffmanCode code = HuffmanCode::build({}, 1);
    EXPECT_TRUE(code.valid());
    EXPECT_EQ(code.numSymbols(), 0u);

    BitWriter bw;
    EXPECT_FALSE(code.encode(0xdeadbeef, bw));
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_EQ(code.decode(br), 0xdeadbeefu);
}

TEST(Huffman, SingleSymbolGetsOneBitCode)
{
    const HuffmanCode code = HuffmanCode::build({{42, 100}}, 1);
    EXPECT_EQ(code.numSymbols(), 1u);
    EXPECT_LE(code.encodedBits(42), 1u + 1u);

    BitWriter bw;
    EXPECT_TRUE(code.encode(42, bw));
    BitReader br(bw.bytes(), bw.bitSize());
    EXPECT_EQ(code.decode(br), 42u);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes)
{
    const HuffmanCode code = HuffmanCode::build(
        {{1, 1000}, {2, 100}, {3, 10}, {4, 1}}, 1);
    EXPECT_LE(code.encodedBits(1), code.encodedBits(2));
    EXPECT_LE(code.encodedBits(2), code.encodedBits(3));
    EXPECT_LE(code.encodedBits(3), code.encodedBits(4));
}

TEST(Huffman, ZeroWeightSymbolsDropped)
{
    const HuffmanCode code =
        HuffmanCode::build({{1, 10}, {2, 0}}, 1);
    EXPECT_EQ(code.numSymbols(), 1u);
    EXPECT_FALSE(code.hasCode(2));
    EXPECT_TRUE(code.hasCode(1));
}

TEST(Huffman, StreamOfMixedSymbolsRoundTrips)
{
    std::vector<HuffmanCode::Freq> freqs;
    for (std::uint32_t v = 0; v < 200; ++v)
        freqs.emplace_back(v * 7919, (v % 13) + 1);
    const HuffmanCode code = HuffmanCode::build(freqs, 4);

    Rng rng(3);
    std::vector<std::uint32_t> symbols;
    // 500 mixed symbols outgrow the hot-path writer; use a big one.
    BasicBitWriter<1 << 16> bw;
    for (int i = 0; i < 500; ++i) {
        // Mix coded symbols and escapes.
        const std::uint32_t value =
            rng.chance(0.8)
                ? static_cast<std::uint32_t>(rng.below(200)) * 7919
                : static_cast<std::uint32_t>(rng.next());
        symbols.push_back(value);
        code.encode(value, bw);
    }
    BitReader br(bw.bytes(), bw.bitSize());
    for (const std::uint32_t expected : symbols)
        ASSERT_EQ(code.decode(br), expected);
    EXPECT_EQ(br.remaining(), 0u);
}

TEST(Huffman, KraftInequalityHolds)
{
    std::vector<HuffmanCode::Freq> freqs;
    Rng rng(9);
    for (std::uint32_t v = 0; v < 300; ++v)
        freqs.emplace_back(v, rng.below(4096) + 1);
    const HuffmanCode code = HuffmanCode::build(freqs, 2);

    double kraft = 0;
    for (std::uint32_t v = 0; v < 300; ++v)
        kraft += std::pow(2.0, -double(code.encodedBits(v)));
    // Escape adds the remaining leaf; coded symbols alone must be < 1.
    EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, DeterministicAcrossBuilds)
{
    std::vector<HuffmanCode::Freq> freqs = {
        {10, 5}, {20, 5}, {30, 7}, {40, 7}};
    const HuffmanCode a = HuffmanCode::build(freqs, 1);
    const HuffmanCode b = HuffmanCode::build(freqs, 1);
    for (const auto &[symbol, weight] : freqs)
        EXPECT_EQ(a.encodedBits(symbol), b.encodedBits(symbol));
}

TEST(Huffman, NearOptimalAverageLength)
{
    // Uniform over 16 symbols: optimal average code length is 4 bits.
    std::vector<HuffmanCode::Freq> freqs;
    for (std::uint32_t v = 0; v < 16; ++v)
        freqs.emplace_back(v, 100);
    const HuffmanCode code = HuffmanCode::build(freqs, 1);
    double total = 0;
    for (std::uint32_t v = 0; v < 16; ++v)
        total += code.encodedBits(v);
    EXPECT_LE(total / 16.0, 5.0);
    EXPECT_GE(total / 16.0, 4.0);
}
