/**
 * @file
 * Unit tests for the memory substrate: functional memory image, MSHR
 * file, DRAM/interconnect queueing and the L2 cache.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/l2cache.hh"
#include "mem/memory_image.hh"
#include "mem/mshr.hh"

using namespace latte;

namespace
{

/** Fills each byte with a function of the line address. */
class StampGen : public LineGenerator
{
  public:
    void
    generate(Addr line_addr, std::span<std::uint8_t> out) override
    {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = static_cast<std::uint8_t>(line_addr / 128 + i);
    }
};

} // namespace

// ------------------------------------------------------- MemoryImage

TEST(MemoryImage, DefaultsToZero)
{
    MemoryImage mem;
    const auto &line = mem.line(0x1000);
    for (const auto byte : line)
        EXPECT_EQ(byte, 0);
}

TEST(MemoryImage, GeneratorFillsRegion)
{
    MemoryImage mem;
    mem.addRegion(0x1000, 0x1000, std::make_shared<StampGen>());
    const auto &line = mem.line(0x1080);
    EXPECT_EQ(line[0], static_cast<std::uint8_t>(0x1080 / 128));
    EXPECT_EQ(line[5], static_cast<std::uint8_t>(0x1080 / 128 + 5));
    // Outside the region: zero.
    EXPECT_EQ(mem.line(0x0)[3], 0);
}

TEST(MemoryImage, LaterRegionsTakePrecedence)
{
    MemoryImage mem;
    mem.addRegion(0x0, 0x10000, std::make_shared<StampGen>());
    mem.addRegion(0x1000, 0x100,
                  std::make_shared<StampGen>()); // same gen, same value
    const auto &line = mem.line(0x1000);
    EXPECT_EQ(line[0], static_cast<std::uint8_t>(0x1000 / 128));
}

TEST(MemoryImage, WriteThenReadBack)
{
    MemoryImage mem;
    const std::uint8_t data[4] = {1, 2, 3, 4};
    mem.writeBytes(0x12c, data); // crosses into line at 0x100
    std::uint8_t out[4] = {};
    mem.readBytes(0x12c, out);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[3], 4);
}

TEST(MemoryImage, CrossLineAccess)
{
    MemoryImage mem;
    std::vector<std::uint8_t> data(200, 0xab);
    mem.writeBytes(0x70, data); // spans two lines
    std::vector<std::uint8_t> out(200);
    mem.readBytes(0x70, out);
    for (const auto byte : out)
        EXPECT_EQ(byte, 0xab);
    EXPECT_EQ(mem.residentLines(), 3u);
}

TEST(MemoryImage, GeneratedLinesAreStable)
{
    MemoryImage mem;
    mem.addRegion(0, 1 << 20, std::make_shared<StampGen>());
    const auto first = mem.line(0x4000);
    const auto second = mem.line(0x4000);
    EXPECT_EQ(first, second);
}

// ------------------------------------------------------------- MSHRs

TEST(Mshr, AllocateMergeRetire)
{
    StatGroup root("root");
    MshrFile mshrs(4, &root);

    EXPECT_TRUE(mshrs.hasFree());
    mshrs.allocate(0x100, 500);
    EXPECT_TRUE(mshrs.outstanding(0x100));
    EXPECT_EQ(mshrs.merge(0x100), 500u);
    EXPECT_EQ(mshrs.fillCycle(0x100), 500u);

    const auto none = mshrs.retire(499);
    EXPECT_TRUE(none.empty());
    const auto done = mshrs.retire(500);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 0x100u);
    EXPECT_FALSE(mshrs.outstanding(0x100));
}

TEST(Mshr, CapacityEnforced)
{
    StatGroup root("root");
    MshrFile mshrs(2, &root);
    mshrs.allocate(0x100, 10);
    mshrs.allocate(0x200, 20);
    EXPECT_FALSE(mshrs.hasFree());
    EXPECT_EQ(mshrs.nextFillCycle(), 10u);
    mshrs.retire(10);
    EXPECT_TRUE(mshrs.hasFree());
    EXPECT_EQ(mshrs.nextFillCycle(), 20u);
}

TEST(MshrDeath, DoubleAllocatePanics)
{
    StatGroup root("root");
    MshrFile mshrs(2, &root);
    mshrs.allocate(0x100, 10);
    EXPECT_DEATH(mshrs.allocate(0x100, 20), "assertion");
}

// ------------------------------------------------------ DRAM and NoC

TEST(Dram, UnloadedLatencyIsMinimum)
{
    GpuConfig cfg;
    StatGroup root("root");
    DramModel dram(cfg, &root);
    const Cycles ready = dram.access(1000, 128);
    // extra latency beyond the L2 path plus the transfer itself.
    EXPECT_EQ(ready, 1000 + (cfg.dramMinLatency - cfg.l2.minLatency) + 1);
}

TEST(Dram, BandwidthQueuesBuildUp)
{
    GpuConfig cfg;
    cfg.dramBytesPerCycle = 1.0; // 128 cycles per line
    StatGroup root("root");
    DramModel dram(cfg, &root);
    const Cycles first = dram.access(0, 128);
    const Cycles second = dram.access(0, 128);
    EXPECT_GT(second, first);
    EXPECT_GE(second - first, 100u);
}

TEST(Noc, ChannelsAreIndependent)
{
    GpuConfig cfg;
    cfg.nocBytesPerCycle = 1.0;
    StatGroup root("root");
    Interconnect noc(cfg, &root);

    // Saturate the reply channel far in the future.
    noc.transfer(100000, 4096, Interconnect::Channel::Reply);
    // Requests at t=0 must not queue behind that reply.
    const Cycles req = noc.transfer(0, 8,
                                    Interconnect::Channel::Request);
    EXPECT_LE(req, noc.traversalLatency() + 8);
}

TEST(Noc, BandwidthDelaysSuccessors)
{
    GpuConfig cfg;
    cfg.nocBytesPerCycle = 2.0;
    StatGroup root("root");
    Interconnect noc(cfg, &root);
    const Cycles a = noc.transfer(0, 256,
                                  Interconnect::Channel::Request);
    const Cycles b = noc.transfer(0, 256,
                                  Interconnect::Channel::Request);
    EXPECT_EQ(a + 128, b);
}

// ---------------------------------------------------------------- L2

class L2Fixture : public ::testing::Test
{
  protected:
    L2Fixture()
        : root("root"), noc(cfg, &root), dram(cfg, &root),
          l2(cfg, &noc, &dram, &mem, &root)
    {}

    GpuConfig cfg;
    StatGroup root;
    MemoryImage mem;
    Interconnect noc;
    DramModel dram;
    L2Cache l2;
};

TEST_F(L2Fixture, MissThenHit)
{
    const auto miss = l2.access(0, 0x1000, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(l2.misses.count(), 1u);
    // Unloaded miss observed from the SM ~ dramMinLatency.
    EXPECT_GE(miss.readyCycle, cfg.dramMinLatency);
    EXPECT_LE(miss.readyCycle, cfg.dramMinLatency + 40);

    const auto hit = l2.access(10000, 0x1000, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_GE(hit.readyCycle - 10000, cfg.l2.minLatency);
    EXPECT_LE(hit.readyCycle - 10000, cfg.l2.minLatency + 20);
}

TEST_F(L2Fixture, LruEvictionWithinSet)
{
    // Fill one set (8 ways) plus one more; the first line must evict.
    const Addr set_stride =
        static_cast<Addr>(cfg.l2NumSets()) * cfg.l2.lineBytes;
    for (unsigned i = 0; i <= cfg.l2.assoc; ++i)
        l2.access(i * 1000, 0x2000 + i * set_stride, false);

    const auto again = l2.access(1000000, 0x2000, false);
    EXPECT_FALSE(again.hit) << "LRU victim should have been evicted";
}

TEST_F(L2Fixture, InvalidateAllDropsLines)
{
    l2.access(0, 0x3000, false);
    l2.invalidateAll();
    const auto res = l2.access(10000, 0x3000, false);
    EXPECT_FALSE(res.hit);
}

TEST_F(L2Fixture, WritesCountSeparately)
{
    l2.access(0, 0x4000, true);
    EXPECT_EQ(l2.writes.count(), 1u);
    EXPECT_EQ(l2.reads.count(), 0u);
}
