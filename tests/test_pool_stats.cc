/**
 * @file
 * Tests for the SimThreadPool introspection counters: exact item/epoch
 * accounting between epochs, the caller-side barrier-wait histogram,
 * the process-wide fold on pool destruction, the StatGroup mirror and
 * the Prometheus exposition. LATTE_SIM_THREADS_NO_CLAMP is set for the
 * fixture so worker threads exist even on small machines — the same
 * hook the sanitizer CI jobs use.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <numeric>
#include <string>

#include "metrics/latency_histogram.hh"
#include "sim/thread_pool.hh"

using namespace latte;

namespace
{

class PoolStats : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        hadNoClamp_ = std::getenv("LATTE_SIM_THREADS_NO_CLAMP") != nullptr;
        ::setenv("LATTE_SIM_THREADS_NO_CLAMP", "1", 1);
    }

    void
    TearDown() override
    {
        if (!hadNoClamp_)
            ::unsetenv("LATTE_SIM_THREADS_NO_CLAMP");
    }

  private:
    bool hadNoClamp_ = false;
};

std::uint64_t
workerSum(const SimPoolStats &stats)
{
    return std::accumulate(stats.workerItems.begin(),
                           stats.workerItems.end(), std::uint64_t{0});
}

TEST_F(PoolStats, CountsItemsEpochsAndBarrierWaits)
{
    SimThreadPool pool(2);
    ASSERT_EQ(pool.workers(), 2u);

    constexpr std::size_t kItems = 16;
    constexpr int kEpochs = 3;
    std::atomic<std::size_t> ran{0};
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
        pool.run(kItems, [&](std::size_t) {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(ran.load(), kItems * kEpochs);

    const SimPoolStats stats = pool.stats();
    EXPECT_EQ(stats.epochs, static_cast<std::uint64_t>(kEpochs));
    EXPECT_EQ(stats.items, kItems * kEpochs);
    EXPECT_EQ(stats.workerItems.size(), 2u);
    EXPECT_EQ(stats.callerItems + workerSum(stats), stats.items);
    // One barrier wait is timed per parallel epoch, by the caller only.
    EXPECT_EQ(stats.barrierWaitNs.count(), stats.epochs);
    EXPECT_GE(stats.barrierWaitNs.max(), 0.0);
}

TEST_F(PoolStats, InlineEpochsAreNotCounted)
{
    // Zero workers: run() executes inline with no epoch machinery, so
    // the counters stay empty — they measure parallel overhead, not
    // work done.
    SimThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 0u);
    std::atomic<std::size_t> ran{0};
    pool.run(8, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 8u);

    const SimPoolStats stats = pool.stats();
    EXPECT_EQ(stats.epochs, 0u);
    EXPECT_EQ(stats.items, 0u);
    EXPECT_EQ(stats.barrierWaitNs.count(), 0u);
}

TEST_F(PoolStats, DestructionFoldsIntoGlobalAggregate)
{
    const SimPoolStats before = simPoolGlobalStats();
    {
        SimThreadPool pool(2);
        std::atomic<std::size_t> ran{0};
        pool.run(24, [&](std::size_t) {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(ran.load(), 24u);
    } // destructor folds this pool's counters into the aggregate
    const SimPoolStats after = simPoolGlobalStats();

    EXPECT_EQ(after.epochs - before.epochs, 1u);
    EXPECT_EQ(after.items - before.items, 24u);
    EXPECT_EQ(after.barrierWaitNs.count() - before.barrierWaitNs.count(),
              1u);
    // The aggregate keeps no per-worker breakdown.
    EXPECT_TRUE(after.workerItems.empty());
}

TEST_F(PoolStats, MergeSumsCountersAndHistograms)
{
    SimPoolStats a;
    a.epochs = 2;
    a.items = 10;
    a.callerItems = 4;
    a.sleepTransitions = 1;
    a.barrierWaitNs.record(100.0);

    SimPoolStats b;
    b.epochs = 3;
    b.items = 20;
    b.callerItems = 5;
    b.sleepTransitions = 2;
    b.barrierWaitNs.record(900.0);
    b.barrierWaitNs.record(300.0);

    a.merge(b);
    EXPECT_EQ(a.epochs, 5u);
    EXPECT_EQ(a.items, 30u);
    EXPECT_EQ(a.callerItems, 9u);
    EXPECT_EQ(a.sleepTransitions, 3u);
    EXPECT_EQ(a.barrierWaitNs.count(), 3u);
    EXPECT_EQ(a.barrierWaitNs.min(), 100.0);
    EXPECT_EQ(a.barrierWaitNs.max(), 900.0);
}

TEST_F(PoolStats, LatencyHistogramMergePreservesMoments)
{
    metrics::LatencyHistogram a;
    metrics::LatencyHistogram b;
    for (int i = 1; i <= 50; ++i)
        a.record(static_cast<double>(i));
    for (int i = 51; i <= 100; ++i)
        b.record(static_cast<double>(i));

    metrics::LatencyHistogram whole;
    for (int i = 1; i <= 100; ++i)
        whole.record(static_cast<double>(i));

    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
    EXPECT_EQ(a.min(), whole.min());
    EXPECT_EQ(a.max(), whole.max());
    EXPECT_EQ(a.percentile(50), whole.percentile(50));
    EXPECT_EQ(a.percentile(99), whole.percentile(99));

    // Merging an empty histogram is a no-op in both directions.
    metrics::LatencyHistogram empty;
    const std::uint64_t count = a.count();
    a.merge(empty);
    EXPECT_EQ(a.count(), count);
    empty.merge(a);
    EXPECT_EQ(empty.count(), count);
}

TEST_F(PoolStats, StatGroupMirrorsTheAggregate)
{
    SimPoolStats stats;
    stats.epochs = 7;
    stats.items = 70;
    stats.callerItems = 30;
    stats.sleepTransitions = 5;
    stats.barrierWaitNs.record(42.0);
    stats.barrierWaitNs.record(43.0);

    SimPoolStatGroup group(stats);
    EXPECT_EQ(group.epochs.count(), 7u);
    EXPECT_EQ(group.items.count(), 70u);
    EXPECT_EQ(group.callerItems.count(), 30u);
    EXPECT_EQ(group.sleepTransitions.count(), 5u);
    EXPECT_EQ(group.barrierWaits.count(), 2u);

    // The group flows through the shared visitor machinery like any
    // other stat tree, rooted at "sim_pool".
    std::map<std::string, double> flat;
    group.collect(flat);
    EXPECT_EQ(flat.at("sim_pool.epochs"), 7.0);
    EXPECT_EQ(flat.at("sim_pool.items"), 70.0);
}

TEST_F(PoolStats, PrometheusExpositionCoversTheCounters)
{
    // Ensure the aggregate is non-trivial before rendering.
    {
        SimThreadPool pool(2);
        pool.run(4, [](std::size_t) {});
    }
    const std::string text = simPoolPrometheus();
    EXPECT_NE(text.find("# TYPE latte_sim_pool_epochs_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("latte_sim_pool_items_total "),
              std::string::npos);
    EXPECT_NE(text.find("latte_sim_pool_caller_items_total "),
              std::string::npos);
    EXPECT_NE(text.find("latte_sim_pool_sleep_transitions_total "),
              std::string::npos);
    EXPECT_NE(text.find("latte_sim_pool_barrier_wait_ns"),
              std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

} // namespace
