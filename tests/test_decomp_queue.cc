/**
 * @file
 * Tests for the decompression-queue contention model (Eq. 3): effective
 * hit latency, queue build-up under bursts, and drain behaviour.
 */

#include <gtest/gtest.h>

#include "compress/decomp_queue.hh"

using namespace latte;

TEST(DecompQueue, UnloadedLatencyIsEqThree)
{
    StatGroup root("root");
    DecompressionQueue queue("q", &root);
    // effective = latency + (pos 0 + 1)
    EXPECT_EQ(queue.enqueue(100, 14), 100u + 14 + 0 + 1);
}

TEST(DecompQueue, BurstBuildsPositions)
{
    StatGroup root("root");
    DecompressionQueue queue("q", &root);
    const Cycles first = queue.enqueue(0, 14);
    const Cycles second = queue.enqueue(0, 14);
    const Cycles third = queue.enqueue(0, 14);
    EXPECT_EQ(first, 15u);
    EXPECT_EQ(second, 16u);
    EXPECT_EQ(third, 17u);
    EXPECT_EQ(queue.depth(0), 3u);
}

TEST(DecompQueue, DrainsByCompletionTime)
{
    StatGroup root("root");
    DecompressionQueue queue("q", &root);
    queue.enqueue(0, 14);   // done at 15
    queue.enqueue(0, 14);   // done at 16
    EXPECT_EQ(queue.depth(10), 2u);
    EXPECT_EQ(queue.depth(15), 1u);
    EXPECT_EQ(queue.depth(16), 0u);

    // A late arrival sees an empty queue again.
    EXPECT_EQ(queue.enqueue(100, 2), 100u + 2 + 0 + 1);
}

TEST(DecompQueue, ExpectedPosMatchesDepth)
{
    StatGroup root("root");
    DecompressionQueue queue("q", &root);
    queue.enqueue(0, 10);
    queue.enqueue(0, 10);
    EXPECT_EQ(queue.expectedPos(5), queue.depth(5));
    EXPECT_EQ(queue.expectedPos(50), 0u);
}

TEST(DecompQueue, StatsTrackUsage)
{
    StatGroup root("root");
    DecompressionQueue queue("q", &root);
    for (int i = 0; i < 5; ++i)
        queue.enqueue(0, 8);
    EXPECT_EQ(queue.requests.count(), 5u);
    EXPECT_GT(queue.peakDepth.count(), 0u);
    EXPECT_GT(queue.queuePos.value(), 0.0);

    queue.clear();
    EXPECT_EQ(queue.depth(0), 0u);
}

TEST(DecompQueue, SteadyArrivalRateReachesEquilibrium)
{
    StatGroup root("root");
    DecompressionQueue queue("q", &root);
    // Arrivals every 2 cycles with 14-cycle latency: the queue must
    // stabilise rather than grow without bound (pos ~ rL/(1-r)).
    std::size_t depth_at_end = 0;
    for (Cycles t = 0; t < 4000; t += 2)
        queue.enqueue(t, 14);
    depth_at_end = queue.depth(4000);
    EXPECT_LT(depth_at_end, 32u);
}
