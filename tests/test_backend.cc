/**
 * @file
 * The CompressorBackend dispatch layer: registry shape, name
 * resolution, the batched probeLines() API contract, and — the
 * load-bearing property — bit-identical LineMeta output from every
 * SIMD tier, pinned by a randomized differential fuzzer against the
 * scalar kernels. Also pins that the backend never leaks into the
 * result-cache fingerprint: a result computed by one backend must be
 * a cache hit for every other.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <random>
#include <vector>

#include "compress/backend.hh"
#include "compress/factory.hh"
#include "compress/sc.hh"
#include "cache/compress_memo.hh"
#include "runner/result_cache.hh"
#include "workloads/value_gens.hh"
#include "workloads/zoo.hh"

using namespace latte;

namespace
{

/** Restore the process-wide backend selection on scope exit. */
class BackendGuard
{
  public:
    BackendGuard() : saved_(&activeCompressorBackend()) {}
    ~BackendGuard() { setCompressorBackend(*saved_); }

  private:
    const CompressorBackend *saved_;
};

using Line = std::array<std::uint8_t, kLineBytes>;

/** The value-profile blend the property tests sweep (plus raw noise). */
std::vector<std::shared_ptr<LineGenerator>>
profileGens(std::uint64_t seed)
{
    return {
        std::make_shared<ZeroGen>(),
        std::make_shared<RandomGen>(seed),
        std::make_shared<IntArrayGen>(seed ^ 1, 1000, 3, 5),
        std::make_shared<IntArrayGen>(seed ^ 2, 5, 60000, 0),
        std::make_shared<PaletteGen>(seed ^ 3, 48, true, 1.2, 0.2),
        std::make_shared<PointerArrayGen>(seed ^ 4, 0x7f0000000000ull,
                                          1 << 20),
        std::make_shared<FloatNoiseGen>(seed ^ 5, 1.0f, 0.8f),
    };
}

/**
 * Lines built from boundary words: values straddling every BDI delta
 * width and FPC class edge (sign flips, 2^(8d-1) +/- 1, repeated
 * bytes, half-word splits), where a vector compare that is off by one
 * in the bias trick would first diverge.
 */
std::vector<Line>
boundaryLines(std::uint64_t seed, unsigned n)
{
    static constexpr std::uint32_t kEdges[] = {
        0u, 1u, 7u, 8u, 0x7fu, 0x80u, 0x81u, 0xffu, 0x100u,
        0x7fffu, 0x8000u, 0x8001u, 0xffffu, 0x10000u,
        0x7f7f7f7fu, 0x80808080u, 0xababababu,
        0x7fffffffu, 0x80000000u, 0x80000001u,
        0xfffffff8u, 0xffffff80u, 0xffff8000u, 0xffffffffu,
    };
    std::mt19937_64 rng(seed);
    std::vector<Line> lines(n);
    for (Line &line : lines) {
        // Half the lines share one random base so the delta layouts
        // engage; the rest are pure edge-word soup.
        const std::uint64_t base = rng();
        const bool based = rng() & 1;
        for (unsigned off = 0; off < kLineBytes; off += 4) {
            std::uint32_t word =
                kEdges[rng() % (sizeof(kEdges) / sizeof(kEdges[0]))];
            if (based && (rng() & 1))
                word = static_cast<std::uint32_t>(base) +
                       (word & 0xffu) - 0x80u;
            std::memcpy(line.data() + off, &word, 4);
        }
    }
    return lines;
}

/** Flat view of a contiguous vector<Line>. */
std::span<const std::uint8_t>
flat(const std::vector<Line> &lines)
{
    return {lines.front().data(), lines.size() * kLineBytes};
}

void
expectSameMeta(const LineMeta &a, const LineMeta &b,
               const char *what, std::size_t index)
{
    ASSERT_EQ(a.algo, b.algo) << what << " line " << index;
    ASSERT_EQ(a.encoding, b.encoding) << what << " line " << index;
    ASSERT_EQ(a.sizeBits, b.sizeBits) << what << " line " << index;
    ASSERT_EQ(a.generation, b.generation) << what << " line " << index;
}

std::unique_ptr<Compressor>
trainedEngine(CompressorId id, const std::vector<Line> &corpus)
{
    auto engine = makeCompressor(id);
    if (id == CompressorId::Sc) {
        auto *sc = static_cast<ScCompressor *>(engine.get());
        for (const Line &line : corpus)
            sc->trainLine(line);
        sc->rebuildCodes();
    }
    return engine;
}

} // namespace

TEST(Backend, RegistryLeadsWithScalar)
{
    const auto backends = compressorBackends();
    ASSERT_FALSE(backends.empty());
    EXPECT_STREQ(backends[0].name, "scalar");
    EXPECT_EQ(backends[0].isa, IsaLevel::Scalar);
    EXPECT_TRUE(compressorBackendSupported(backends[0]));
    for (const CompressorBackend &backend : backends) {
        EXPECT_NE(backend.bdiScan, nullptr) << backend.name;
        EXPECT_NE(backend.fpcCountBits, nullptr) << backend.name;
        EXPECT_NE(backend.scLineBits, nullptr) << backend.name;
    }
}

TEST(Backend, ResolveNamesAndAuto)
{
    std::string error;
    const CompressorBackend *autoPick =
        resolveCompressorBackend("auto", &error);
    ASSERT_NE(autoPick, nullptr) << error;
    EXPECT_TRUE(compressorBackendSupported(*autoPick));
    EXPECT_EQ(resolveCompressorBackend("", &error), autoPick);

    // Every supported registry row resolves to itself by name.
    for (const CompressorBackend &backend : compressorBackends()) {
        if (!compressorBackendSupported(backend))
            continue;
        EXPECT_EQ(resolveCompressorBackend(backend.name, &error),
                  &backend);
    }

    EXPECT_EQ(resolveCompressorBackend("neon", &error), nullptr);
    EXPECT_NE(error.find("unknown compress backend"), std::string::npos)
        << error;
}

TEST(Backend, SetAndRestoreActive)
{
    BackendGuard guard;
    for (const CompressorBackend &backend : compressorBackends()) {
        if (!compressorBackendSupported(backend))
            continue;
        setCompressorBackend(backend);
        EXPECT_EQ(&activeCompressorBackend(), &backend);
    }
}

TEST(Backend, ProbeLinesMatchesPerLineProbe)
{
    BackendGuard guard;
    const auto gens = profileGens(17);
    std::vector<Line> corpus;
    for (unsigned i = 0; i < 96; ++i) {
        Line line;
        gens[i % gens.size()]->generate(i * kLineBytes, line);
        corpus.push_back(line);
    }

    for (const CompressorBackend &backend : compressorBackends()) {
        if (!compressorBackendSupported(backend))
            continue;
        setCompressorBackend(backend);
        for (const CompressorId id : allCompressorIds()) {
            auto engine = trainedEngine(id, corpus);
            std::vector<LineMeta> batched(corpus.size());
            engine->probeLines(flat(corpus), batched);
            for (std::size_t i = 0; i < corpus.size(); ++i) {
                const LineMeta single = engine->probe(corpus[i]);
                expectSameMeta(batched[i], single, backend.name, i);
            }
        }
    }
}

TEST(Backend, RunKeyIgnoresCompressBackend)
{
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    RunRequest scalar_request;
    scalar_request.workload = workload;
    scalar_request.policy = PolicyKind::StaticBdi;
    scalar_request.options.compressBackend = "scalar";

    RunRequest auto_request = scalar_request;
    auto_request.options.compressBackend = "auto";
    RunRequest unset_request = scalar_request;
    unset_request.options.compressBackend.clear();

    // The backend is execution speed only — all tiers are pinned
    // bit-identical — so a result computed under any backend must be a
    // cache hit for every other. A second real axis must still miss.
    const auto scalar_key = runner::RunKey::of(scalar_request);
    EXPECT_EQ(scalar_key, runner::RunKey::of(auto_request));
    EXPECT_EQ(scalar_key, runner::RunKey::of(unset_request));
    EXPECT_EQ(scalar_key.fingerprint(),
              runner::RunKey::of(auto_request).fingerprint());

    RunRequest other = scalar_request;
    other.options.tuning.compressionMemo = false;
    EXPECT_NE(scalar_key, runner::RunKey::of(other));
}

TEST(Backend, DriverRejectsUnknownBackend)
{
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    RunRequest request;
    request.workload = workload;
    request.policy = PolicyKind::Baseline;
    request.options.compressBackend = "quantum";

    const RunOutcome outcome = run(request);
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error.code, RunErrorCode::InvalidConfig);
}

TEST(Backend, MemoBatchedMatchesSequential)
{
    BackendGuard guard;
    // A small pool sampled with reuse: repeats guarantee memo hits,
    // in-batch duplicates exercise the alias path, and ~4x as many
    // distinct keys as table entries force index collisions (two
    // misses fighting over one slot).
    const auto gens = profileGens(23);
    std::vector<Line> pool;
    for (unsigned i = 0; i < 4096; ++i) {
        Line line;
        gens[i % gens.size()]->generate(i * kLineBytes, line);
        pool.push_back(line);
    }

    StatGroup root_a("seq"), root_b("batch");
    CompressMemo memo_seq(&root_a);
    CompressMemo memo_batch(&root_b);

    auto bdi = makeCompressor(CompressorId::Bdi);
    auto fpc = makeCompressor(CompressorId::Fpc);
    auto sc = trainedEngine(CompressorId::Sc, pool);
    const std::uint32_t sc_gen =
        static_cast<ScCompressor *>(sc.get())->generation();
    Compressor *cycle[] = {bdi.get(), fpc.get(), sc.get()};

    std::mt19937_64 rng(99);
    std::size_t cursor = 0;
    for (unsigned chunk = 0; chunk < 64; ++chunk) {
        const std::size_t n = 1 + rng() % 48;
        std::vector<std::uint8_t> bytes;
        std::vector<Compressor *> engines;
        std::vector<std::uint32_t> generations;
        for (std::size_t i = 0; i < n; ++i) {
            // Mostly a fresh pool line; sometimes repeat the previous
            // batch line so a hit lands on a just-claimed entry.
            const std::size_t pick =
                (i > 0 && rng() % 4 == 0) ? cursor : rng() % pool.size();
            cursor = pick;
            const Line &line = pool[pick];
            bytes.insert(bytes.end(), line.begin(), line.end());
            Compressor *engine = cycle[rng() % 3];
            engines.push_back(engine);
            generations.push_back(
                engine->id() == CompressorId::Sc ? sc_gen : 0);
        }

        std::vector<LineMeta> batched(n);
        memo_batch.probeLines(engines, bytes, generations, batched);
        for (std::size_t i = 0; i < n; ++i) {
            const LineMeta expected = memo_seq.probe(
                *engines[i],
                std::span<const std::uint8_t>(bytes.data() + i * kLineBytes,
                                              kLineBytes),
                generations[i]);
            expectSameMeta(batched[i], expected, "memo", i);
        }
        ASSERT_EQ(memo_batch.hits.count(), memo_seq.hits.count())
            << "chunk " << chunk;
        ASSERT_EQ(memo_batch.misses.count(), memo_seq.misses.count())
            << "chunk " << chunk;
    }

    // End-state equivalence: replaying a sample sequentially on both
    // memos must produce the same hit/miss pattern and metas.
    for (unsigned i = 0; i < 512; ++i) {
        const Line &line = pool[rng() % pool.size()];
        Compressor *engine = cycle[rng() % 3];
        const std::uint32_t generation =
            engine->id() == CompressorId::Sc ? sc_gen : 0;
        const LineMeta a = memo_batch.probe(*engine, line, generation);
        const LineMeta b = memo_seq.probe(*engine, line, generation);
        expectSameMeta(a, b, "memo end state", i);
    }
    EXPECT_EQ(memo_batch.hits.count(), memo_seq.hits.count());
    EXPECT_EQ(memo_batch.misses.count(), memo_seq.misses.count());
}

TEST(BackendFuzz, DifferentialScalarVsSimd)
{
    BackendGuard guard;
    std::string error;
    const CompressorBackend *scalar =
        resolveCompressorBackend("scalar", &error);
    ASSERT_NE(scalar, nullptr) << error;

    // >= 1e5 lines across the profile blend plus crafted boundary
    // words, compared for all five compressors on every SIMD tier.
    const auto gens = profileGens(31);
    std::vector<Line> corpus;
    for (unsigned i = 0; i < 16384; ++i) {
        Line line;
        gens[i % gens.size()]->generate(i * kLineBytes, line);
        corpus.push_back(line);
    }
    for (const Line &line : boundaryLines(41, 8192))
        corpus.push_back(line);

    std::size_t compared = 0;
    for (const CompressorId id : allCompressorIds()) {
        auto engine = trainedEngine(id, corpus);

        setCompressorBackend(*scalar);
        std::vector<LineMeta> golden(corpus.size());
        engine->probeLines(flat(corpus), golden);

        for (const CompressorBackend &backend : compressorBackends()) {
            if (&backend == scalar ||
                !compressorBackendSupported(backend)) {
                continue;
            }
            setCompressorBackend(backend);
            std::vector<LineMeta> candidate(corpus.size());
            engine->probeLines(flat(corpus), candidate);
            for (std::size_t i = 0; i < corpus.size(); ++i) {
                expectSameMeta(candidate[i], golden[i], backend.name, i);
                ++compared;
            }
        }
    }
    // Two SIMD tiers on x86 CI hosts: 5 algos x 24576 lines x 2 >= 1e5.
    // On hosts with no SIMD tier the fuzzer degenerates to a no-op;
    // the scalar kernels are still covered by every other suite.
    if (compressorBackends().size() > 1 &&
        compressorBackendSupported(compressorBackends()[1])) {
        EXPECT_GE(compared, 100000u);
    }
}
