/**
 * @file
 * Tests for the L1 replacement policies (LRU / FIFO / SRRIP) in the
 * compressed cache, plus the CSV report writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cache/compressed_cache.hh"
#include "core/report.hh"

using namespace latte;

namespace
{

class ReplFixture
{
  public:
    explicit ReplFixture(GpuConfig::ReplPolicy policy)
    {
        cfg.l1Repl = policy;
        root = std::make_unique<StatGroup>("root");
        noc = std::make_unique<Interconnect>(cfg, root.get());
        dram = std::make_unique<DramModel>(cfg, root.get());
        l2 = std::make_unique<L2Cache>(cfg, noc.get(), dram.get(), &mem,
                                       root.get());
        engines = std::make_unique<CompressionEngines>(cfg);
        cache = std::make_unique<CompressedCache>(
            cfg, 0, engines.get(), l2.get(), &mem, root.get());
    }

    void
    install(Addr addr, Cycles &now)
    {
        const auto res = cache->access(now, addr, false);
        now = std::max(now + 1, res.readyCycle + 1);
        cache->processFills(now);
    }

    Addr
    addrInSet(std::uint32_t set, std::uint32_t tag) const
    {
        return (static_cast<Addr>(tag) * cache->numSets() + set) * 128;
    }

    GpuConfig cfg;
    MemoryImage mem;
    std::unique_ptr<StatGroup> root;
    std::unique_ptr<Interconnect> noc;
    std::unique_ptr<DramModel> dram;
    std::unique_ptr<L2Cache> l2;
    std::unique_ptr<CompressionEngines> engines;
    std::unique_ptr<CompressedCache> cache;
};

} // namespace

TEST(Replacement, LruKeepsRecentlyTouchedLine)
{
    ReplFixture rig(GpuConfig::ReplPolicy::LRU);
    Cycles now = 0;
    for (std::uint32_t t = 1; t <= 4; ++t)
        rig.install(rig.addrInSet(3, t), now);
    // Touch the oldest line, then overflow the set: line 2 (now LRU)
    // must be the victim, line 1 must survive.
    rig.cache->access(now, rig.addrInSet(3, 1), false);
    rig.install(rig.addrInSet(3, 5), now);
    EXPECT_TRUE(rig.cache->access(now, rig.addrInSet(3, 1), false).hit);
    EXPECT_FALSE(rig.cache->access(now, rig.addrInSet(3, 2), false).hit);
}

TEST(Replacement, FifoIgnoresTouches)
{
    ReplFixture rig(GpuConfig::ReplPolicy::FIFO);
    Cycles now = 0;
    for (std::uint32_t t = 1; t <= 4; ++t)
        rig.install(rig.addrInSet(3, t), now);
    // Touching line 1 must not save it: FIFO evicts by fill order.
    rig.cache->access(now, rig.addrInSet(3, 1), false);
    rig.install(rig.addrInSet(3, 5), now);
    EXPECT_FALSE(rig.cache->access(now, rig.addrInSet(3, 1), false).hit);
    EXPECT_TRUE(rig.cache->access(now, rig.addrInSet(3, 2), false).hit);
}

TEST(Replacement, SrripProtectsReusedLines)
{
    ReplFixture rig(GpuConfig::ReplPolicy::SRRIP);
    Cycles now = 0;
    for (std::uint32_t t = 1; t <= 4; ++t)
        rig.install(rig.addrInSet(3, t), now);
    // Promote line 1 to rrpv 0 by hitting it; evicting should pick one
    // of the never-reused lines instead.
    rig.cache->access(now, rig.addrInSet(3, 1), false);
    rig.install(rig.addrInSet(3, 5), now);
    EXPECT_TRUE(rig.cache->access(now, rig.addrInSet(3, 1), false).hit);
}

TEST(Replacement, AllPoliciesFillWholeSet)
{
    for (const auto policy :
         {GpuConfig::ReplPolicy::LRU, GpuConfig::ReplPolicy::FIFO,
          GpuConfig::ReplPolicy::SRRIP}) {
        ReplFixture rig(policy);
        Cycles now = 0;
        for (std::uint32_t t = 1; t <= 4; ++t)
            rig.install(rig.addrInSet(6, t), now);
        EXPECT_EQ(rig.cache->evictions.count(), 0u);
        for (std::uint32_t t = 1; t <= 4; ++t) {
            EXPECT_TRUE(
                rig.cache->access(now, rig.addrInSet(6, t), false).hit);
        }
    }
}

// ---------------------------------------------------------- reporting

TEST(Report, CsvContainsHeaderAndRows)
{
    WorkloadRunResult result;
    result.workload = "XX";
    result.policy = PolicyKind::LatteCc;
    result.cycles = 100;
    result.instructions = 250;
    result.hits = 40;
    result.misses = 10;

    std::ostringstream os;
    writeCsv(os, {result});
    const std::string csv = os.str();
    EXPECT_NE(csv.find("workload,policy,cycles"), std::string::npos);
    EXPECT_NE(csv.find("XX,LATTE-CC,100,250,2.5,40,10,0.2"),
              std::string::npos);
}

TEST(Report, ComparisonCsvComputesRatios)
{
    WorkloadRunResult base;
    base.workload = "XX";
    base.policy = PolicyKind::Baseline;
    base.cycles = 200;
    base.misses = 100;
    base.energy.staticMj = 2.0;

    WorkloadRunResult latte = base;
    latte.policy = PolicyKind::LatteCc;
    latte.cycles = 100;
    latte.misses = 60;
    latte.energy.staticMj = 1.0;

    std::ostringstream os;
    writeComparisonCsv(os, {base}, {latte});
    const std::string csv = os.str();
    EXPECT_NE(csv.find("XX,LATTE-CC,2,0.4,0.5"), std::string::npos);
}

TEST(ReportDeath, MismatchedRowsPanic)
{
    WorkloadRunResult a, b;
    a.workload = "AA";
    a.cycles = 1;
    b.workload = "BB";
    b.cycles = 1;
    std::ostringstream os;
    EXPECT_DEATH(writeComparisonCsv(os, {a}, {b}), "mismatch");
}
