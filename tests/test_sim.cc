/**
 * @file
 * Unit and integration tests for the SIMT core model: the GTO/LRR
 * schedulers, CTA placement, end-to-end kernel execution, idle-gap
 * skipping, the memory pipeline under the full GPU, and the
 * barrier-synchronous parallel SM stepping (SimThreadPool, the
 * --sim-threads resolver, and parallel-vs-sequential bit-identity).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <tuple>
#include <vector>

#include "sim/gpu.hh"
#include "sim/scheduler.hh"
#include "sim/thread_pool.hh"
#include "workloads/synthetic_kernel.hh"
#include "workloads/value_gens.hh"

using namespace latte;

// ---------------------------------------------------------- scheduler

namespace
{

std::vector<Warp>
makeWarps(unsigned n, Cycles ready_at = 0)
{
    std::vector<Warp> warps(n);
    for (unsigned i = 0; i < n; ++i) {
        warps[i].slot = i;
        warps[i].state = WarpState::Active;
        warps[i].readyAt = ready_at;
        warps[i].age = i;
    }
    return warps;
}

} // namespace

TEST(Scheduler, GtoStaysGreedy)
{
    WarpScheduler sched(GpuConfig::SchedPolicy::GTO, 0);
    for (unsigned i = 0; i < 4; ++i)
        sched.addSlot(i);
    auto warps = makeWarps(4);

    std::uint32_t ready = 0;
    int pick = sched.pick(warps, 0, ready);
    EXPECT_EQ(ready, 4u);
    EXPECT_EQ(pick, 0); // oldest first
    sched.noteIssued(2); // pretend 2 became the greedy warp
    pick = sched.pick(warps, 1, ready);
    EXPECT_EQ(pick, 2) << "GTO sticks with the greedy warp while ready";
}

TEST(Scheduler, GtoFallsBackToOldest)
{
    WarpScheduler sched(GpuConfig::SchedPolicy::GTO, 0);
    for (unsigned i = 0; i < 4; ++i)
        sched.addSlot(i);
    auto warps = makeWarps(4);
    warps[0].age = 100; // make warp 1 the oldest
    sched.noteIssued(3);
    warps[3].readyAt = 50; // greedy stalls

    std::uint32_t ready = 0;
    const int pick = sched.pick(warps, 0, ready);
    EXPECT_EQ(pick, 1);
    EXPECT_EQ(ready, 3u);
}

TEST(Scheduler, NoReadyWarps)
{
    WarpScheduler sched(GpuConfig::SchedPolicy::GTO, 0);
    sched.addSlot(0);
    auto warps = makeWarps(1, /*ready_at=*/100);
    std::uint32_t ready = 0;
    EXPECT_EQ(sched.pick(warps, 0, ready), -1);
    EXPECT_EQ(ready, 0u);
    EXPECT_EQ(sched.nextWake(warps, 0), 100u);
}

TEST(Scheduler, LrrRotates)
{
    WarpScheduler sched(GpuConfig::SchedPolicy::LRR, 0);
    for (unsigned i = 0; i < 3; ++i)
        sched.addSlot(i);
    auto warps = makeWarps(3);

    std::uint32_t ready = 0;
    int pick = sched.pick(warps, 0, ready);
    EXPECT_EQ(pick, 0);
    sched.noteIssued(0);
    pick = sched.pick(warps, 1, ready);
    EXPECT_EQ(pick, 1);
    sched.noteIssued(1);
    pick = sched.pick(warps, 2, ready);
    EXPECT_EQ(pick, 2);
}

// ----------------------------------------------------- whole-GPU runs

namespace
{

KernelSpec
tinyKernel(std::uint32_t ctas, std::uint32_t wpc, std::uint32_t iters)
{
    KernelSpec spec;
    spec.name = "tiny";
    spec.ctas = ctas;
    spec.warpsPerCta = wpc;
    spec.seed = 42;
    PhaseSpec phase;
    phase.iterations = iters;
    phase.loadsPerIter = 1;
    phase.aluPerIter = 2;
    phase.aluLatency = 2;
    phase.storesPerIter = 0;
    phase.pattern.kind = PatternKind::Streaming;
    phase.pattern.base = 0x10000000;
    phase.pattern.sizeBytes = 1 << 20;
    spec.phases.push_back(phase);
    return spec;
}

} // namespace

TEST(Gpu, RunsTinyKernelToCompletion)
{
    MemoryImage mem;
    GpuConfig cfg;
    Gpu gpu(cfg, &mem);

    SyntheticKernel kernel(tinyKernel(4, 2, 5));
    const RunResult result = gpu.runKernel(kernel);
    EXPECT_TRUE(result.completed);
    // 4 CTAs x 2 warps x 5 iters x 3 instructions.
    EXPECT_EQ(result.instructions, 4u * 2 * 5 * 3);
    EXPECT_GT(result.cycles, 0u);
}

TEST(Gpu, InstructionBudgetStopsEarly)
{
    MemoryImage mem;
    GpuConfig cfg;
    Gpu gpu(cfg, &mem);

    SyntheticKernel kernel(tinyKernel(64, 8, 100));
    const RunResult result = gpu.runKernel(kernel, /*max instrs=*/1000);
    EXPECT_FALSE(result.completed);
    EXPECT_GE(result.instructions, 1000u);
    EXPECT_LT(result.instructions, 64u * 8 * 100 * 3);
}

TEST(Gpu, DeterministicAcrossRuns)
{
    const auto run = [] {
        MemoryImage mem;
        GpuConfig cfg;
        Gpu gpu(cfg, &mem);
        SyntheticKernel kernel(tinyKernel(8, 4, 20));
        return gpu.runKernel(kernel).cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Gpu, CtaLimitsRespected)
{
    MemoryImage mem;
    GpuConfig cfg;
    Gpu gpu(cfg, &mem);

    // 8 warps per CTA: at most 6 CTAs (48 warp slots) fit per SM even
    // though the block limit is 8.
    SyntheticKernel kernel(tinyKernel(200, 8, 3));
    auto &sm = gpu.sm(0);
    sm.startKernel(&kernel);
    std::uint32_t placed = 0;
    while (sm.canTakeCta()) {
        sm.assignCta(0, placed);
        ++placed;
    }
    EXPECT_EQ(placed, 6u);
    EXPECT_EQ(sm.activeWarps(), 48u);
}

TEST(Gpu, WarpSlotLimitWithSmallCtas)
{
    MemoryImage mem;
    GpuConfig cfg;
    Gpu gpu(cfg, &mem);

    // 2 warps per CTA: the 8-block limit binds first -> 16 warps.
    SyntheticKernel kernel(tinyKernel(200, 2, 3));
    auto &sm = gpu.sm(0);
    sm.startKernel(&kernel);
    std::uint32_t placed = 0;
    while (sm.canTakeCta()) {
        sm.assignCta(0, placed);
        ++placed;
    }
    EXPECT_EQ(placed, 8u);
    EXPECT_EQ(sm.activeWarps(), 16u);
}

TEST(Gpu, MultipleKernelsAccumulateClock)
{
    MemoryImage mem;
    GpuConfig cfg;
    Gpu gpu(cfg, &mem);
    SyntheticKernel kernel(tinyKernel(4, 2, 5));

    const RunResult first = gpu.runKernel(kernel);
    const Cycles after_first = gpu.now();
    const RunResult second = gpu.runKernel(kernel);
    EXPECT_EQ(gpu.now(), after_first + second.cycles);
    EXPECT_EQ(first.instructions, second.instructions);
}

TEST(Gpu, MemoryTrafficReachesL2AndDram)
{
    MemoryImage mem;
    GpuConfig cfg;
    Gpu gpu(cfg, &mem);
    SyntheticKernel kernel(tinyKernel(16, 4, 20));
    gpu.runKernel(kernel);

    EXPECT_GT(gpu.totalL1Misses(), 0u);
    EXPECT_GT(gpu.l2().reads.count(), 0u);
    EXPECT_GT(gpu.dram().accesses.count(), 0u);
    EXPECT_GT(gpu.noc().bytesMoved.count(), 0u);
    // Streaming has no reuse: essentially everything misses.
    EXPECT_GT(gpu.totalL1Misses(), gpu.totalL1Hits());
}

TEST(Gpu, StoresAreWriteAvoid)
{
    MemoryImage mem;
    GpuConfig cfg;
    Gpu gpu(cfg, &mem);

    KernelSpec spec = tinyKernel(8, 2, 10);
    spec.phases[0].storesPerIter = 2;
    SyntheticKernel kernel(spec);
    gpu.runKernel(kernel);

    std::uint64_t stores = 0;
    for (std::uint32_t i = 0; i < gpu.numSms(); ++i)
        stores += gpu.sm(i).cache().stores.count();
    EXPECT_GT(stores, 0u);
    EXPECT_GT(gpu.l2().writes.count(), 0u);
}

TEST(SyntheticKernel, FetchIsDeterministic)
{
    SyntheticKernel kernel(tinyKernel(4, 2, 8));
    for (std::uint64_t pc = 0; pc < kernel.instructionsPerWarp(); ++pc) {
        const auto a = kernel.fetch(3, pc);
        const auto b = kernel.fetch(3, pc);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.laneAddrs, b.laneAddrs);
    }
    EXPECT_EQ(kernel.fetch(3, kernel.instructionsPerWarp()).op,
              Op::Exit);
}

TEST(SyntheticKernel, PhaseTransitionsChangeBody)
{
    KernelSpec spec = tinyKernel(1, 1, 4);
    PhaseSpec second = spec.phases[0];
    second.loadsPerIter = 0;
    second.aluPerIter = 1;
    second.iterations = 2;
    spec.phases.push_back(second);
    SyntheticKernel kernel(spec);

    // Phase 1 bodies contain loads; phase 2 bodies are pure ALU.
    EXPECT_EQ(kernel.fetch(0, 0).op, Op::Load);
    const std::uint64_t phase2_start = 4 * 3;
    EXPECT_EQ(kernel.fetch(0, phase2_start).op, Op::Alu);
    EXPECT_EQ(kernel.instructionsPerWarp(), 4u * 3 + 2);
}

TEST(SyntheticKernel, AddressesStayInRegion)
{
    KernelSpec spec = tinyKernel(8, 2, 16);
    spec.phases[0].pattern.kind = PatternKind::Irregular;
    spec.phases[0].pattern.sliceBytes = 4096;
    spec.phases[0].pattern.hotBytes = 1024;
    spec.phases[0].pattern.divergentLanes = 8;
    SyntheticKernel kernel(spec);

    const Addr base = spec.phases[0].pattern.base;
    const Addr end = base + spec.phases[0].pattern.sizeBytes;
    for (std::uint32_t warp = 0; warp < 16; ++warp) {
        for (std::uint64_t pc = 0; pc < 8; ++pc) {
            const auto instr = kernel.fetch(warp, pc);
            if (instr.op != Op::Load)
                continue;
            for (const Addr addr : instr.laneAddrs) {
                EXPECT_GE(addr, base);
                EXPECT_LT(addr, end);
            }
        }
    }
}

// ------------------------------------------------- parallel SM stepping

TEST(SimParallel, ResolveSimThreads)
{
    std::string error;

    // Explicit counts and the "auto" keyword.
    EXPECT_EQ(resolveSimThreads("1", &error), 1u);
    EXPECT_EQ(resolveSimThreads("4", &error), 4u);
    EXPECT_GE(resolveSimThreads("auto", &error), 1u);

    // Rejections carry a message and return 0.
    for (const char *bad : {"0", "-2", "four", "4x", " 4"}) {
        error.clear();
        EXPECT_EQ(resolveSimThreads(bad, &error), 0u) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }

    // Empty defers to LATTE_SIM_THREADS, defaulting to 1; an invalid
    // environment value warns and falls back instead of failing the run.
    ::unsetenv("LATTE_SIM_THREADS");
    EXPECT_EQ(resolveSimThreads("", nullptr), 1u);
    ::setenv("LATTE_SIM_THREADS", "3", 1);
    EXPECT_EQ(resolveSimThreads("", nullptr), 3u);
    ::setenv("LATTE_SIM_THREADS", "banana", 1);
    EXPECT_EQ(resolveSimThreads("", nullptr), 1u);
    ::unsetenv("LATTE_SIM_THREADS");
}

TEST(SimParallel, ThreadPoolRunsEveryItemExactlyOnce)
{
    SimThreadPool pool(3);
    // Spawn count is clamped to spare cores; zero workers means every
    // epoch runs inline on the caller, which this test still covers.
    EXPECT_LE(pool.workers(), 3u);

    // Many epochs of varying width against the same pool: every item
    // index must be visited exactly once per epoch, including widths
    // below, equal to and above the worker count, and width 0/1 (which
    // run inline on the caller).
    for (const std::size_t count : {0u, 1u, 2u, 3u, 4u, 7u, 64u, 257u}) {
        std::vector<std::atomic<int>> visits(count ? count : 1);
        for (auto &v : visits)
            v.store(0);
        pool.run(count, [&](std::size_t i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(visits[i].load(), 1) << "count " << count
                                           << " item " << i;
    }
}

TEST(SimParallel, GpuMatchesSequentialBitForBit)
{
    // The barrier-synchronous parallel loop must be indistinguishable
    // from the sequential one: same cycle count, same instruction
    // count, same L1 totals, same full stat dump. 16 SMs so epochs
    // clear the kMinParallelDue inline threshold and actually exercise
    // the pool.
    const auto runOnce = [](unsigned threads) {
        MemoryImage mem;
        GpuConfig cfg;
        cfg.numSms = 16;
        Gpu gpu(cfg, &mem);
        gpu.setSimThreads(threads);
        SyntheticKernel kernel(tinyKernel(32, 2, 16));
        const RunResult result = gpu.runKernel(kernel);
        std::map<std::string, double> stats;
        gpu.collect(stats);
        return std::tuple(result.cycles, result.instructions,
                          gpu.totalL1Hits(), gpu.totalL1Misses(),
                          std::move(stats));
    };

    const auto sequential = runOnce(1);
    for (const unsigned threads : {2u, 4u, 8u})
        EXPECT_EQ(runOnce(threads), sequential)
            << "sim-threads " << threads;
}
