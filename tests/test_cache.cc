/**
 * @file
 * Unit tests for the compressed L1 data cache: tag/sub-block accounting,
 * the 4x-tag capacity expansion, write-avoid semantics, MSHR merging,
 * decompression queueing and SC generation invalidation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/compressed_cache.hh"
#include "common/config.hh"
#include "workloads/value_gens.hh"

using namespace latte;

namespace
{

class CacheFixture : public ::testing::Test
{
  protected:
    explicit CacheFixture(CacheTuning tuning = {})
        : root("root"), noc(cfg, &root), dram(cfg, &root),
          l2(cfg, &noc, &dram, &mem, &root), engines(cfg),
          cache(cfg, 0, &engines, &l2, &mem, &root, tuning)
    {}

    /** Fill a line in memory with highly BDI-compressible data. */
    void
    makeCompressible(Addr line_addr)
    {
        std::array<std::uint8_t, 128> bytes{};
        for (unsigned i = 0; i < 32; ++i)
            storeLe(bytes.data() + 4 * i, 1000 + i, 4);
        mem.writeBytes(line_addr, bytes);
    }

    /** Fill a line with incompressible noise. */
    void
    makeRandom(Addr line_addr, std::uint64_t seed)
    {
        std::array<std::uint8_t, 128> bytes;
        Rng rng(seed);
        for (unsigned i = 0; i < 128; i += 8)
            storeLe(bytes.data() + i, rng.next(), 8);
        mem.writeBytes(line_addr, bytes);
    }

    /** Miss on a line, then advance past the fill so it inserts. */
    void
    installLine(Addr addr, Cycles &now)
    {
        const auto res = cache.access(now, addr, false);
        EXPECT_FALSE(res.hit);
        now = res.readyCycle + 1;
        cache.processFills(now);
    }

    /** Address mapping to a specific set with a distinct tag. */
    Addr
    addrInSet(std::uint32_t set, std::uint32_t tag) const
    {
        return (static_cast<Addr>(tag) * cache.numSets() + set) * 128;
    }

    GpuConfig cfg;
    StatGroup root;
    MemoryImage mem;
    Interconnect noc;
    DramModel dram;
    L2Cache l2;
    CompressionEngines engines;
    CompressedCache cache;
};

/** Fixture variant: insert everything with a fixed mode. */
class StaticModeProvider : public CompressionModeProvider
{
  public:
    explicit StaticModeProvider(CompressorId mode) : mode_(mode) {}
    CompressorId modeForInsertion(std::uint32_t) override { return mode_; }

  private:
    CompressorId mode_;
};

} // namespace

TEST_F(CacheFixture, GeometryMatchesTableII)
{
    EXPECT_EQ(cache.numSets(), 32u);
    EXPECT_EQ(cache.tagsPerSet(), 16u);     // 4x tags
    EXPECT_EQ(cache.subBlocksPerSet(), 16u); // 4 lines x 4 sub-blocks
}

TEST_F(CacheFixture, MissThenHit)
{
    Cycles now = 0;
    installLine(0x1000, now);
    EXPECT_EQ(cache.misses.count(), 1u);
    EXPECT_EQ(cache.insertions.count(), 1u);

    const auto hit = cache.access(now, 0x1000, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyCycle, now + cfg.l1.hitLatency);
}

TEST_F(CacheFixture, SecondaryMissMerges)
{
    const auto first = cache.access(0, 0x2000, false);
    const auto second = cache.access(1, 0x2040, false); // same line
    EXPECT_FALSE(second.hit);
    EXPECT_TRUE(second.merged);
    EXPECT_EQ(second.readyCycle, first.readyCycle);
    EXPECT_EQ(cache.mergedMisses.count(), 1u);
    EXPECT_EQ(cache.misses.count(), 1u);
}

TEST_F(CacheFixture, MshrExhaustionRejects)
{
    // Fill all MSHRs with distinct lines.
    for (std::uint32_t i = 0; i < cfg.l1.mshrEntries; ++i)
        cache.access(0, 0x100000 + i * 128, false);
    const auto res = cache.access(0, 0x900000, false);
    EXPECT_TRUE(res.rejected);
    EXPECT_EQ(cache.rejections.count(), 1u);
}

TEST_F(CacheFixture, UncompressedSetHoldsFourLines)
{
    Cycles now = 0;
    for (std::uint32_t t = 0; t < 5; ++t)
        installLine(addrInSet(3, t + 1), now);
    // Fifth line evicts the LRU first line.
    EXPECT_EQ(cache.evictions.count(), 1u);
    const auto res = cache.access(now, addrInSet(3, 1), false);
    EXPECT_FALSE(res.hit);
}

TEST_F(CacheFixture, CompressionExpandsCapacity)
{
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);

    Cycles now = 0;
    // 8 compressible lines in one set: all should fit (BDI ~36 B
    // -> 2 sub-blocks each, 16 sub-blocks and 16 tags available).
    for (std::uint32_t t = 0; t < 8; ++t) {
        makeCompressible(addrInSet(5, t + 1));
        installLine(addrInSet(5, t + 1), now);
    }
    EXPECT_EQ(cache.evictions.count(), 0u);
    for (std::uint32_t t = 0; t < 8; ++t) {
        const auto res = cache.access(now, addrInSet(5, t + 1), false);
        EXPECT_TRUE(res.hit) << "line " << t;
        now = res.readyCycle;
    }
    EXPECT_EQ(cache.compressedInsertions.count(), 8u);
}

TEST_F(CacheFixture, IncompressibleLinesTakeFullSpace)
{
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);

    Cycles now = 0;
    for (std::uint32_t t = 0; t < 5; ++t) {
        makeRandom(addrInSet(6, t + 1), 100 + t);
        installLine(addrInSet(6, t + 1), now);
    }
    // Random data stays raw: capacity is the baseline 4 lines.
    EXPECT_GE(cache.evictions.count(), 1u);
}

TEST_F(CacheFixture, CompressedHitPaysDecompression)
{
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);

    Cycles now = 0;
    makeCompressible(0x4000);
    installLine(0x4000, now);

    const auto hit = cache.access(now, 0x4000, false);
    EXPECT_TRUE(hit.hit);
    // hit latency + BDI decompression (2) + queue position 0 + 1.
    EXPECT_EQ(hit.readyCycle,
              now + cfg.l1.hitLatency + cfg.timings.bdiDecompress + 1);
    EXPECT_EQ(cache.queueFor(CompressorId::Bdi).requests.count(), 1u);
}

TEST_F(CacheFixture, DecompressionQueueBacklogGrows)
{
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);

    Cycles now = 0;
    makeCompressible(0x4000);
    installLine(0x4000, now);

    const auto h1 = cache.access(now, 0x4000, false);
    const auto h2 = cache.access(now, 0x4000, false);
    EXPECT_GT(h2.readyCycle, h1.readyCycle)
        << "second concurrent hit must queue behind the first";
}

TEST_F(CacheFixture, WriteHitInvalidatesLine)
{
    Cycles now = 0;
    installLine(0x5000, now);
    const auto write = cache.access(now, 0x5000, true);
    EXPECT_TRUE(write.hit);
    EXPECT_EQ(cache.writeInvalidations.count(), 1u);

    const auto read = cache.access(now + 1, 0x5000, false);
    EXPECT_FALSE(read.hit) << "write-avoid must drop the cached copy";
}

TEST_F(CacheFixture, WriteMissDoesNotAllocate)
{
    const auto write = cache.access(0, 0x6000, true);
    EXPECT_FALSE(write.hit);
    EXPECT_EQ(cache.insertions.count(), 0u);
    EXPECT_EQ(l2.writes.count(), 1u);
}

TEST_F(CacheFixture, EffectiveCapacityCountsUncompressedSize)
{
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);
    Cycles now = 0;
    for (std::uint32_t t = 0; t < 6; ++t) {
        makeCompressible(addrInSet(7, t + 1));
        installLine(addrInSet(7, t + 1), now);
    }
    EXPECT_EQ(cache.effectiveCapacityBytes(), 6u * 128u);
    EXPECT_LT(cache.usedSubBlocks(), 6u * 4u);
}

TEST_F(CacheFixture, ScGenerationInvalidation)
{
    StaticModeProvider sc_mode(CompressorId::Sc);
    cache.setModeProvider(&sc_mode);

    // Train and build codes so SC actually compresses.
    Cycles now = 0;
    makeCompressible(0x7000);
    engines.sc.trainLine(mem.line(0x7000));
    engines.sc.rebuildCodes();

    installLine(0x7000, now);
    EXPECT_TRUE(cache.access(now, 0x7000, false).hit);

    // Retire the generation: the line must be dropped.
    const auto generation = engines.sc.rebuildCodes();
    cache.invalidateScGeneration(generation);
    EXPECT_EQ(cache.scGenerationInvalidations.count(), 1u);
    EXPECT_FALSE(cache.access(now + 1, 0x7000, false).hit);
}

TEST_F(CacheFixture, InvalidateAllEmptiesCache)
{
    Cycles now = 0;
    installLine(0x8000, now);
    installLine(0x9000, now);
    cache.invalidateAll();
    EXPECT_EQ(cache.validLines(), 0u);
    EXPECT_EQ(cache.effectiveCapacityBytes(), 0u);
}

TEST_F(CacheFixture, PerSetSubBlockCounterTracksTagWalk)
{
    // usedSubBlocksCounter() is maintained incrementally on every
    // insert/evict/invalidate; it must agree with the O(tags) walk at
    // every step of a churny mixed workload.
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);

    const auto check_all = [&](const char *when) {
        for (std::uint32_t set = 0; set < cache.numSets(); ++set) {
            ASSERT_EQ(cache.usedSubBlocksCounter(set),
                      cache.usedSubBlocksInSet(set))
                << when << ", set " << set;
        }
    };

    Cycles now = 0;
    check_all("empty");
    for (std::uint32_t t = 0; t < 24; ++t) {
        // Alternate compressible and incompressible lines over two sets
        // so inserts force evictions of both shapes.
        const Addr addr = addrInSet(t % 2 ? 3 : 11, t + 1);
        if (t % 3)
            makeCompressible(addr);
        else
            makeRandom(addr, t);
        installLine(addr, now);
        check_all("after install");
    }

    const Addr victim = addrInSet(3, 24);
    const auto write = cache.access(now, victim, true);
    if (write.hit)
        check_all("after write invalidation");

    cache.invalidateAll();
    check_all("after invalidateAll");
    for (std::uint32_t set = 0; set < cache.numSets(); ++set)
        EXPECT_EQ(cache.usedSubBlocksCounter(set), 0u);
}

// ------------------------------- tuning knobs used by Figures 3 and 4

namespace
{

class NoCapacityFixture : public CacheFixture
{
  protected:
    NoCapacityFixture()
        : CacheFixture(CacheTuning{.capacityBenefit = false,
                                   .chargeDecompression = true,
                                   .verifyRoundTrip = false})
    {}
};

class FreeLatencyFixture : public CacheFixture
{
  protected:
    FreeLatencyFixture()
        : CacheFixture(CacheTuning{.capacityBenefit = true,
                                   .chargeDecompression = false,
                                   .verifyRoundTrip = false})
    {}
};

class VerifyFixture : public CacheFixture
{
  protected:
    VerifyFixture()
        : CacheFixture(CacheTuning{.capacityBenefit = true,
                                   .chargeDecompression = true,
                                   .verifyRoundTrip = true})
    {}
};

} // namespace

TEST_F(NoCapacityFixture, CompressedLinesStillTakeFullSpace)
{
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);
    Cycles now = 0;
    for (std::uint32_t t = 0; t < 5; ++t) {
        makeCompressible(addrInSet(2, t + 1));
        installLine(addrInSet(2, t + 1), now);
    }
    EXPECT_GE(cache.evictions.count(), 1u)
        << "without the capacity benefit the set holds 4 lines";
}

TEST_F(FreeLatencyFixture, CompressedHitsCostBaseLatency)
{
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);
    Cycles now = 0;
    makeCompressible(0x4000);
    installLine(0x4000, now);
    const auto hit = cache.access(now, 0x4000, false);
    EXPECT_EQ(hit.readyCycle, now + cfg.l1.hitLatency);
}

TEST_F(VerifyFixture, RoundTripVerifiedOnHits)
{
    StaticModeProvider bdi(CompressorId::Bdi);
    cache.setModeProvider(&bdi);
    Cycles now = 0;
    makeCompressible(0xa000);
    installLine(0xa000, now);
    EXPECT_TRUE(cache.access(now, 0xa000, false).hit);
}
