/**
 * @file
 * Tests for the experiment runner subsystem: JSON round-trips, thread
 * count invariance (bit-identical sweeps at -j 1/2/8), the on-disk
 * result cache, RunKey config-hash separation and the policy
 * catalogue.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/driver.hh"
#include "metrics/profiler.hh"
#include "metrics/registry.hh"
#include "runner/arg_parse.hh"
#include "runner/experiment_runner.hh"
#include "runner/json.hh"
#include "runner/result_cache.hh"
#include "runner/sweep.hh"
#include "trace/sink.hh"
#include "trace/tracer.hh"
#include "workloads/zoo.hh"

using namespace latte;
using namespace latte::runner;

namespace
{

/** A cut-down machine so each simulated cell costs milliseconds. */
DriverOptions
tinyOptions()
{
    DriverOptions options;
    options.cfg.numSms = 2;
    options.maxInstructionsPerKernel = 20'000;
    return options;
}

/** A small mixed grid: 3 workloads x {Baseline, LATTE-CC}. */
std::vector<RunRequest>
smallGrid()
{
    std::vector<RunRequest> requests;
    const char *names[] = {"KM", "PRK", "SS"};
    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        for (const PolicyKind kind :
             {PolicyKind::Baseline, PolicyKind::LatteCc}) {
            RunRequest &request = requests.emplace_back();
            request.workload = workload;
            request.policy = kind;
            request.options = tinyOptions();
        }
    }
    return requests;
}

std::vector<std::string>
dumpAll(const std::vector<RunOutcome> &outcomes)
{
    std::vector<std::string> dumps;
    dumps.reserve(outcomes.size());
    for (const auto &outcome : outcomes)
        dumps.push_back(toJson(outcome).dump());
    return dumps;
}

TEST(Runner, ThreadCountInvariance)
{
    const auto requests = smallGrid();
    ASSERT_FALSE(requests.empty());

    std::vector<std::vector<std::string>> dumps;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        RunnerOptions options;
        options.threads = threads;
        options.progress = false;
        ExperimentRunner runner(options);
        dumps.push_back(dumpAll(runner.runAll(requests)));
    }

    for (std::size_t i = 1; i < dumps.size(); ++i)
        EXPECT_EQ(dumps[0], dumps[i]) << "thread set #" << i;

    // The serialization survives a parse/re-dump cycle byte-identically
    // (numbers, including uint64 counters, round-trip exactly).
    for (const std::string &dump : dumps[0]) {
        std::string error;
        const Json parsed = Json::parse(dump, &error);
        ASSERT_TRUE(error.empty()) << error;
        RunOutcome restored;
        ASSERT_TRUE(fromJson(parsed, restored));
        EXPECT_EQ(toJson(restored).dump(), dump);
    }
}

TEST(Runner, DiskCacheHitsOnSecondInvocation)
{
    const std::string dir =
        ::testing::TempDir() + "/latte_runner_cache_test";
    std::filesystem::remove_all(dir);

    const auto requests = smallGrid();
    RunnerOptions options;
    options.threads = 2;
    options.progress = false;
    options.cacheDir = dir;

    ExperimentRunner first(options);
    const auto cold = first.runAll(requests);
    EXPECT_EQ(first.stats().executed, requests.size());
    EXPECT_EQ(first.stats().cacheHits, 0u);

    ExperimentRunner second(options);
    const auto warm = second.runAll(requests);
    EXPECT_EQ(second.stats().executed, 0u);
    EXPECT_EQ(second.stats().cacheHits, requests.size());

    EXPECT_EQ(dumpAll(cold), dumpAll(warm));
    std::filesystem::remove_all(dir);
}

TEST(Runner, ConcurrentRunnersShareOneCacheDirSafely)
{
    // Two sweeps over the same grid, racing on one --cache-dir — the
    // regime latted and direct runs share. Entries are published with
    // per-process/per-thread tmp names + rename, so concurrent stores
    // of the same key must never corrupt an entry or fail a run.
    const std::string dir =
        ::testing::TempDir() + "/latte_runner_shared_cache_test";
    std::filesystem::remove_all(dir);

    const auto requests = smallGrid();
    RunnerOptions options;
    options.threads = 2;
    options.progress = false;
    options.cacheDir = dir;

    std::vector<std::vector<RunOutcome>> results(4);
    {
        std::vector<std::thread> racers;
        for (auto &slot : results)
            racers.emplace_back([&, out = &slot] {
                ExperimentRunner runner(options);
                *out = runner.runAll(requests);
            });
        for (std::thread &racer : racers)
            racer.join();
    }
    for (const auto &outcomes : results) {
        ASSERT_EQ(outcomes.size(), requests.size());
        EXPECT_EQ(dumpAll(outcomes), dumpAll(results.front()));
        for (const RunOutcome &outcome : outcomes)
            EXPECT_TRUE(outcome.ok()) << to_string(outcome.error);
    }

    // Whatever interleaving won, the surviving entries are sound: a
    // fresh runner is served entirely from the cache, bit-identically.
    ExperimentRunner warm(options);
    const auto cached = warm.runAll(requests);
    EXPECT_EQ(warm.stats().executed, 0u);
    EXPECT_EQ(warm.stats().cacheHits, requests.size());
    EXPECT_EQ(dumpAll(cached), dumpAll(results.front()));
    std::filesystem::remove_all(dir);
}

TEST(Runner, ExecutionShortcutsAreBitIdentical)
{
    // The compression memo, the verify-round-trip payloads and the
    // tracer are execution shortcuts or observers: none of them may
    // perturb a single simulated bit. Golden check: full result JSON
    // (cycles, energy, per-kernel snapshots, the whole stat dump) is
    // byte-identical with each toggled, after dropping the memo's own
    // bookkeeping counters.
    const auto dump_without_memo_stats = [](WorkloadRunResult result) {
        std::erase_if(result.stats, [](const auto &kv) {
            return kv.first.find("compress_memo") != std::string::npos;
        });
        return toJson(result).dump();
    };

    const char *names[] = {"KM", "SS"};
    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        ASSERT_NE(workload, nullptr);
        for (const PolicyKind kind :
             {PolicyKind::LatteCc, PolicyKind::StaticSc}) {
            RunRequest request;
            request.workload = workload;
            request.policy = kind;
            request.options = tinyOptions();
            request.options.tuning.compressionMemo = true;
            const std::string golden =
                dump_without_memo_stats(run(request).value());

            RunRequest no_memo = request;
            no_memo.options.tuning.compressionMemo = false;
            EXPECT_EQ(dump_without_memo_stats(run(no_memo).value()),
                      golden)
                << name << "/" << policyName(kind) << " memo off";

            RunRequest verified = request;
            verified.options.tuning.verifyRoundTrip = true;
            EXPECT_EQ(dump_without_memo_stats(run(verified).value()),
                      golden)
                << name << "/" << policyName(kind) << " verify on";

            RunRequest traced = request;
            Tracer tracer;
            traced.tracer = &tracer;
            EXPECT_EQ(dump_without_memo_stats(run(traced).value()),
                      golden)
                << name << "/" << policyName(kind) << " tracing on";

            RunRequest metered = request;
            metrics::MetricRegistry registry;
            metered.metrics = &registry;
            EXPECT_EQ(dump_without_memo_stats(run(metered).value()),
                      golden)
                << name << "/" << policyName(kind) << " metrics on";
            EXPECT_FALSE(registry.rows().empty());

            metrics::setProfilerEnabled(true);
            const std::string profiled =
                dump_without_memo_stats(run(request).value());
            metrics::setProfilerEnabled(false);
            EXPECT_EQ(profiled, golden)
                << name << "/" << policyName(kind) << " profiler on";
        }
    }
}

TEST(Runner, SimThreadsAreBitIdentical)
{
    // The barrier-synchronous parallel cycle loop is an execution
    // shortcut in the ExecutionShortcutsAreBitIdentical sense: not one
    // simulated bit may depend on the thread count. Golden check over
    // the whole policy catalogue: the full result JSON, the sampled
    // metric rows and the Chrome trace export are all byte-identical
    // between --sim-threads=1 and =4. Eight SMs so epochs clear the
    // pool's inline threshold and genuinely run concurrently.
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    for (const PolicyKind kind :
         {PolicyKind::Baseline, PolicyKind::StaticBdi,
          PolicyKind::StaticSc, PolicyKind::StaticBpc,
          PolicyKind::AdaptiveHitCount, PolicyKind::AdaptiveCmp,
          PolicyKind::LatteCc, PolicyKind::LatteCcBdiBpc,
          PolicyKind::KernelOpt, PolicyKind::L2StaticBdi,
          PolicyKind::L2Latte, PolicyKind::LatteCcL1L2}) {
        const auto runOnce = [&](const char *threads) {
            RunRequest request;
            request.workload = workload;
            request.policy = kind;
            request.options = tinyOptions();
            request.options.cfg.numSms = 8;
            request.options.simThreads = threads;
            Tracer tracer(1 << 14);
            metrics::MetricRegistry registry;
            request.tracer = &tracer;
            request.metrics = &registry;
            const RunOutcome outcome = run(request);
            EXPECT_TRUE(outcome.ok()) << to_string(outcome.error);

            std::ostringstream trace;
            ChromeTraceSink sink(trace);
            sink.writeRun("t", tracer);
            sink.finish();
            std::ostringstream rows;
            registry.exportAs(rows, metrics::ExportFormat::Jsonl);
            return std::tuple(toJson(outcome.value()).dump(),
                              trace.str(), rows.str());
        };

        const auto sequential = runOnce("1");
        const auto parallel = runOnce("4");
        EXPECT_EQ(std::get<0>(parallel), std::get<0>(sequential))
            << policyName(kind) << " result";
        EXPECT_EQ(std::get<1>(parallel), std::get<1>(sequential))
            << policyName(kind) << " trace";
        EXPECT_EQ(std::get<2>(parallel), std::get<2>(sequential))
            << policyName(kind) << " metrics";
    }
}

TEST(Runner, RunKeyIgnoresSimThreads)
{
    // Like compressBackend, simThreads is execution speed only: every
    // thread count produces bit-identical results, so a cached cell is
    // valid whichever count computed it and the fingerprint must not
    // split on the knob.
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    RunRequest request;
    request.workload = workload;
    request.policy = PolicyKind::LatteCc;
    request.options = tinyOptions();
    const RunKey base = RunKey::of(request);

    for (const char *threads : {"1", "2", "4", "auto"}) {
        RunRequest threaded = request;
        threaded.options.simThreads = threads;
        EXPECT_EQ(RunKey::of(threaded), base) << threads;
        EXPECT_EQ(RunKey::of(threaded).fingerprint(),
                  base.fingerprint())
            << threads;
    }

    // The resolved count still reaches the outcome envelope, and an
    // unresolvable spelling is a structured failure, not an exit.
    RunRequest threaded = request;
    threaded.options.simThreads = "2";
    EXPECT_EQ(run(threaded).simThreads, 2u);
    RunRequest bad = request;
    bad.options.simThreads = "zero";
    const RunOutcome outcome = run(bad);
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error.code, RunErrorCode::InvalidConfig);
}

TEST(Runner, ObservationalOutputsBypassDiskCache)
{
    // Metrics and the profiler must force a real simulation just like
    // the tracer: a disk hit would return the result without producing
    // any samples or profile time.
    const std::string dir =
        ::testing::TempDir() + "/latte_runner_metrics_bypass_test";
    std::filesystem::remove_all(dir);

    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);
    RunRequest request;
    request.workload = workload;
    request.policy = PolicyKind::Baseline;
    request.options = tinyOptions();

    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.cacheDir = dir;

    // Warm the cache.
    {
        ExperimentRunner runner(options);
        runner.runAll({request});
        EXPECT_EQ(runner.stats().executed, 1u);
    }
    // A plain re-run is served from disk...
    {
        ExperimentRunner runner(options);
        runner.runAll({request});
        EXPECT_EQ(runner.stats().cacheHits, 1u);
        EXPECT_EQ(runner.stats().executed, 0u);
    }
    // ...but a metrics-attached run simulates and produces samples.
    {
        metrics::MetricRegistry registry;
        RunRequest metered = request;
        metered.metrics = &registry;
        ExperimentRunner runner(options);
        runner.runAll({metered});
        EXPECT_EQ(runner.stats().executed, 1u);
        EXPECT_EQ(runner.stats().cacheHits, 0u);
        EXPECT_FALSE(registry.rows().empty());
    }
    // ...and so does one with the process-wide profiler enabled.
    {
        metrics::setProfilerEnabled(true);
        ExperimentRunner runner(options);
        runner.runAll({request});
        metrics::setProfilerEnabled(false);
        EXPECT_EQ(runner.stats().executed, 1u);
        EXPECT_EQ(runner.stats().cacheHits, 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST(Runner, RunKeySeparatesDriverOptions)
{
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    RunRequest a;
    a.workload = workload;
    a.policy = PolicyKind::StaticBdi;
    a.options = tinyOptions();

    // The old string key (abbr + policy name) aliased these three.
    RunRequest b = a;
    b.options.tuning.chargeDecompression = false;
    RunRequest c = a;
    c.options.cfg.l1.sizeBytes = 64 * 1024;

    const RunKey ka = RunKey::of(a);
    const RunKey kb = RunKey::of(b);
    const RunKey kc = RunKey::of(c);
    EXPECT_NE(ka, kb);
    EXPECT_NE(ka, kc);
    EXPECT_NE(kb, kc);
    EXPECT_NE(ka.fingerprint(), kb.fingerprint());

    // Seed participates in the key too.
    RunRequest d = a;
    d.seed = 42;
    EXPECT_NE(RunKey::of(d), ka);

    // Identical requests agree.
    const RunRequest a_copy = a;
    EXPECT_EQ(RunKey::of(a), RunKey::of(a_copy));
}

TEST(Runner, KindAndEquivalentFactoryAgree)
{
    // A PolicyKind request and a custom factory constructing the same
    // policy must simulate identically — run(RunRequest) is the single
    // entry point for both shapes.
    const Workload *workload = findWorkload("PRK");
    ASSERT_NE(workload, nullptr);
    const DriverOptions options = tinyOptions();

    RunRequest by_kind;
    by_kind.workload = workload;
    by_kind.policy = PolicyKind::StaticSc;
    by_kind.options = options;
    const WorkloadRunResult via_kind = run(by_kind).value();

    RunRequest by_factory;
    by_factory.workload = workload;
    by_factory.policy = [](const GpuConfig &cfg) {
        return std::make_unique<StaticPolicy>(cfg, CompressorId::Sc);
    };
    by_factory.label = via_kind.policyLabel;
    by_factory.options = options;
    const WorkloadRunResult via_factory = run(by_factory).value();

    // The result's policyKind tag differs by construction shape; the
    // simulation itself must not.
    EXPECT_EQ(via_kind.cycles, via_factory.cycles);
    EXPECT_EQ(via_kind.instructions, via_factory.instructions);
    EXPECT_EQ(via_kind.hits, via_factory.hits);
    EXPECT_EQ(via_kind.misses, via_factory.misses);
    EXPECT_EQ(via_kind.modeAccesses, via_factory.modeAccesses);
    EXPECT_EQ(via_kind.policyLabel, via_factory.policyLabel);
}

TEST(Runner, PolicyCatalogueRoundTrip)
{
    const PolicyKind kinds[] = {
        PolicyKind::Baseline,        PolicyKind::StaticBdi,
        PolicyKind::StaticSc,        PolicyKind::StaticBpc,
        PolicyKind::AdaptiveHitCount, PolicyKind::AdaptiveCmp,
        PolicyKind::LatteCc,         PolicyKind::LatteCcBdiBpc,
        PolicyKind::KernelOpt,       PolicyKind::L2StaticBdi,
        PolicyKind::L2Latte,         PolicyKind::LatteCcL1L2,
    };
    const GpuConfig cfg;
    for (const PolicyKind kind : kinds) {
        const char *name = policyName(kind);
        ASSERT_NE(name, nullptr);
        const PolicyKind *back = policyKindFromName(name);
        ASSERT_NE(back, nullptr) << name;
        EXPECT_EQ(*back, kind);
        if (kind != PolicyKind::KernelOpt) {
            EXPECT_NE(makePolicy(kind, cfg), nullptr) << name;
        }
    }
    EXPECT_EQ(policyKindFromName("no-such-policy"), nullptr);
}

TEST(Runner, SeedMixingChangesResults)
{
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    RunRequest request;
    request.workload = workload;
    request.policy = PolicyKind::Baseline;
    request.options = tinyOptions();

    const WorkloadRunResult canonical = run(request).value();
    request.seed = 1234;
    const WorkloadRunResult reseeded = run(request).value();

    EXPECT_EQ(reseeded.seed, 1234u);
    // A different seed perturbs the stochastic access streams.
    EXPECT_NE(toJson(canonical).dump(), toJson(reseeded).dump());

    // And the same seed reproduces bit-identically.
    const WorkloadRunResult reseeded_again = run(request).value();
    EXPECT_EQ(toJson(reseeded).dump(), toJson(reseeded_again).dump());
}

TEST(Runner, SweepArgParsing)
{
    const char *raw[] = {"prog",        "-j",     "4",    "positional",
                         "--cache-dir", "/tmp/x", "--no-progress",
                         "--json",      "out.json",
                         "--metrics-out", "m.jsonl",
                         "--metrics-interval", "5000",
                         "--profile",   "--bench-out", "bench.json",
                         "--resume",    "journal.jsonl",
                         "--cell-timeout", "2.5",
                         "--cell-cycle-budget", "1000000",
                         "--retries",   "3",
                         "--retry-backoff-ms", "50"};
    std::vector<char *> argv;
    for (const char *arg : raw)
        argv.push_back(const_cast<char *>(arg));
    int argc = static_cast<int>(argv.size());

    const SweepCliOptions cli = parseSweepArgs(argc, argv.data());
    EXPECT_EQ(cli.jobs, 4u);
    EXPECT_EQ(cli.cacheDir, "/tmp/x");
    EXPECT_EQ(cli.jsonPath, "out.json");
    EXPECT_EQ(cli.metricsOut, "m.jsonl");
    EXPECT_EQ(cli.metricsInterval, 5000u);
    EXPECT_TRUE(cli.profile);
    EXPECT_EQ(cli.benchOut, "bench.json");
    EXPECT_FALSE(cli.progress);
    EXPECT_EQ(cli.resumePath, "journal.jsonl");
    EXPECT_EQ(cli.cellTimeoutMs, 2500u);
    EXPECT_EQ(cli.cellCycleBudget, 1'000'000u);
    EXPECT_EQ(cli.retries, 3u);
    EXPECT_EQ(cli.retryBackoffMs, 50u);

    // Consumed flags are compacted away; positionals survive.
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "positional");
}

TEST(Runner, SweepDedupesAndRunsPending)
{
    const Workload *workload = findWorkload("PRK");
    ASSERT_NE(workload, nullptr);

    SweepCliOptions cli;
    cli.jobs = 2;
    cli.progress = false;
    Sweep sweep(cli, tinyOptions());

    sweep.add(*workload, PolicyKind::Baseline);
    sweep.add(*workload, PolicyKind::Baseline); // duplicate, one cell
    sweep.add(*workload, PolicyKind::StaticBdi);

    const auto &base = sweep.get(*workload, PolicyKind::Baseline);
    const auto &bdi = sweep.get(*workload, PolicyKind::StaticBdi);
    EXPECT_GT(base.cycles, 0u);
    EXPECT_GT(bdi.cycles, 0u);
    EXPECT_EQ(sweep.outcomes().size(), 2u);

    // get() on an undeclared cell simulates it on demand.
    const auto &sc = sweep.get(*workload, PolicyKind::StaticSc);
    EXPECT_GT(sc.cycles, 0u);
    EXPECT_EQ(sweep.outcomes().size(), 3u);
}

TEST(Runner, SweepRunsCustomFactoryCells)
{
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    SweepCliOptions cli;
    cli.jobs = 2;
    cli.progress = false;
    Sweep sweep(cli, tinyOptions());

    auto fpc_request = [&]() {
        RunRequest request;
        request.workload = workload;
        request.policy = [](const GpuConfig &cfg) {
            return std::make_unique<StaticPolicy>(cfg, CompressorId::Fpc);
        };
        request.label = "Static-FPC";
        request.options = tinyOptions();
        return request;
    };

    sweep.add(fpc_request());
    // A second request with the same label dedupes onto the same cell
    // even though the std::function object differs.
    const auto &first = sweep.get(fpc_request());
    EXPECT_EQ(sweep.outcomes().size(), 1u);
    EXPECT_EQ(first.policyLabel, "Static-FPC");
    EXPECT_GT(first.cycles, 0u);
}

TEST(Runner, JsonParsesPrimitives)
{
    std::string error;
    const Json parsed = Json::parse(
        R"({"a": [1, 2.5, true, null, "s\n"], "b": 18446744073709551615})",
        &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(parsed.at("a").asArray().size(), 5u);
    EXPECT_EQ(parsed.at("a").asArray()[0].asUint(), 1u);
    EXPECT_DOUBLE_EQ(parsed.at("a").asArray()[1].asDouble(), 2.5);
    EXPECT_TRUE(parsed.at("a").asArray()[2].asBool());
    EXPECT_EQ(parsed.at("a").asArray()[3].type(), Json::Type::Null);
    EXPECT_EQ(parsed.at("a").asArray()[4].asString(), "s\n");
    EXPECT_EQ(parsed.at("b").asUint(), 18446744073709551615ull);

    Json::parse("{broken", &error);
    EXPECT_FALSE(error.empty());
}

} // namespace
