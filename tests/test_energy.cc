/**
 * @file
 * Tests for the energy model: per-event accounting, breakdown
 * consistency, the paper's compressor energies, and end-to-end
 * integration (compression must reduce data-movement energy when it
 * reduces misses).
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "energy/energy_model.hh"
#include "workloads/zoo.hh"

using namespace latte;

TEST(Energy, ZeroUsageZeroEnergy)
{
    GpuConfig cfg;
    EnergyModel model(cfg);
    const EnergyReport report = model.compute(UsageCounts{});
    EXPECT_DOUBLE_EQ(report.totalMj(), 0.0);
}

TEST(Energy, ComponentsScaleLinearly)
{
    GpuConfig cfg;
    EnergyModel model(cfg);

    UsageCounts usage;
    usage.instructions = 1000;
    usage.cycles = 500;
    const EnergyReport base = model.compute(usage);

    usage.instructions = 2000;
    usage.cycles = 1000;
    const EnergyReport doubled = model.compute(usage);
    EXPECT_NEAR(doubled.totalMj(), 2.0 * base.totalMj(), 1e-12);
    EXPECT_NEAR(doubled.coreDynamicMj, 2.0 * base.coreDynamicMj, 1e-12);
    EXPECT_NEAR(doubled.staticMj, 2.0 * base.staticMj, 1e-12);
}

TEST(Energy, CompressionEventsUsePaperNumbers)
{
    GpuConfig cfg;
    EnergyModel model(cfg);

    UsageCounts usage;
    usage.bdiCompressions = 1000;
    usage.bdiDecompressions = 1000;
    const double bdi_mj = model.compute(usage).compressionMj;
    // 1000 * (0.192 + 0.056) nJ = 0.248 uJ = 2.48e-4 mJ.
    EXPECT_NEAR(bdi_mj, 1000 * (0.192 + 0.056) * 1e-6, 1e-12);

    UsageCounts sc_usage;
    sc_usage.scCompressions = 1000;
    sc_usage.scDecompressions = 1000;
    const double sc_mj = model.compute(sc_usage).compressionMj;
    EXPECT_NEAR(sc_mj, 1000 * (0.42 + 0.336) * 1e-6, 1e-12);
    EXPECT_GT(sc_mj, bdi_mj) << "SC events cost more than BDI events";
}

TEST(Energy, UsageSubtractionIsComponentWise)
{
    UsageCounts a, b;
    a.cycles = 100;
    a.dramBytes = 5000;
    a.scDecompressions = 7;
    b.cycles = 40;
    b.dramBytes = 2000;
    b.scDecompressions = 3;
    const UsageCounts d = a - b;
    EXPECT_EQ(d.cycles, 60u);
    EXPECT_EQ(d.dramBytes, 3000u);
    EXPECT_EQ(d.scDecompressions, 4u);
}

TEST(Energy, HarvestMatchesGpuCounters)
{
    MemoryImage mem;
    const Workload *workload = findWorkload("PTH");
    ASSERT_NE(workload, nullptr);
    workload->setup(mem);

    GpuConfig cfg;
    Gpu gpu(cfg, &mem);
    auto kernels = makeKernels(*workload);
    gpu.runKernel(*kernels[0], 50000);

    const UsageCounts usage = harvestUsage(gpu);
    EXPECT_EQ(usage.cycles, gpu.cyclesElapsed.count());
    EXPECT_EQ(usage.instructions, gpu.totalInstructions());
    EXPECT_EQ(usage.dramBytes, gpu.dram().bytesTransferred.count());
    EXPECT_GT(usage.l1Accesses, 0u);
}

TEST(Energy, DataMovementFallsWithMissReduction)
{
    const Workload *workload = findWorkload("KM");
    ASSERT_NE(workload, nullptr);

    RunRequest base_request;
    base_request.workload = workload;
    base_request.policy = PolicyKind::Baseline;
    const WorkloadRunResult base = run(base_request).value();

    RunRequest sc_request = base_request;
    sc_request.policy = PolicyKind::StaticSc;
    const WorkloadRunResult sc = run(sc_request).value();

    ASSERT_LT(sc.misses, base.misses);
    EXPECT_LT(sc.energy.dataMovementMj(), base.energy.dataMovementMj())
        << "fewer misses must mean less data moved";
    EXPECT_GT(sc.energy.compressionMj, base.energy.compressionMj);
}

TEST(Energy, BreakdownSumsToTotal)
{
    GpuConfig cfg;
    EnergyModel model(cfg);
    UsageCounts usage;
    usage.cycles = 12345;
    usage.instructions = 678;
    usage.l1Accesses = 90;
    usage.l2Accesses = 12;
    usage.nocBytes = 3456;
    usage.dramBytes = 789;
    usage.bdiCompressions = 5;
    usage.scDecompressions = 6;

    const EnergyReport report = model.compute(usage);
    const double sum = report.coreDynamicMj + report.l1Mj + report.l2Mj +
                       report.nocMj + report.dramMj +
                       report.compressionMj + report.staticMj;
    EXPECT_NEAR(report.totalMj(), sum, 1e-15);
    EXPECT_GT(report.totalMj(), 0.0);
}
