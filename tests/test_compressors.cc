/**
 * @file
 * Unit and property tests for the five compression engines: bit-exact
 * round trips over crafted and randomised lines, encoding selection, and
 * size accounting.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/rng.hh"
#include "compress/bdi.hh"
#include "compress/bpc.hh"
#include "compress/cpack.hh"
#include "compress/factory.hh"
#include "compress/fpc.hh"
#include "compress/sc.hh"

using namespace latte;

namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;

Line
zeroLine()
{
    Line line{};
    return line;
}

Line
patternLine32(std::uint32_t (*f)(unsigned))
{
    Line line{};
    for (unsigned i = 0; i < kLineBytes / 4; ++i)
        storeLe(line.data() + 4 * i, f(i), 4);
    return line;
}

Line
randomLine(std::uint64_t seed)
{
    Line line;
    Rng rng(seed);
    for (unsigned i = 0; i < kLineBytes; i += 8)
        storeLe(line.data() + i, rng.next(), 8);
    return line;
}

void
expectRoundTrip(Compressor &engine, const Line &line)
{
    const CompressedLine compressed = engine.compress(line);
    const auto decoded = engine.decompress(compressed);
    ASSERT_EQ(decoded.size(), kLineBytes);
    EXPECT_TRUE(std::memcmp(decoded.data(), line.data(), kLineBytes) == 0)
        << engine.name() << " round trip failed (encoding "
        << int(compressed.encoding) << ")";
    EXPECT_LE(compressed.sizeBits, kLineBits)
        << engine.name() << " must never expand a line";
    EXPECT_GT(compressed.sizeBits, 0u);
}

} // namespace

// --------------------------------------------------------------- BDI

TEST(Bdi, ZeroLineUsesZeroEncoding)
{
    BdiCompressor bdi;
    const auto line = zeroLine();
    const auto c = bdi.compress(line);
    EXPECT_EQ(c.encoding, BdiCompressor::kEncZeros);
    EXPECT_LE(c.sizeBits, 8u);
    expectRoundTrip(bdi, line);
}

TEST(Bdi, Repeated8ByteValue)
{
    BdiCompressor bdi;
    Line line;
    for (unsigned i = 0; i < kLineBytes; i += 8)
        storeLe(line.data() + i, 0xdeadbeefcafef00dull, 8);
    const auto c = bdi.compress(line);
    EXPECT_EQ(c.encoding, BdiCompressor::kEncRep8);
    EXPECT_EQ(c.sizeBits, 64u);
    expectRoundTrip(bdi, line);
}

TEST(Bdi, SmallDeltaIntsCompress)
{
    BdiCompressor bdi;
    const auto line = patternLine32(
        [](unsigned i) { return 1000000u + i * 3; });
    const auto c = bdi.compress(line);
    EXPECT_LT(c.sizeBits, kLineBits / 2)
        << "small-delta ints should compress at least 2x";
    expectRoundTrip(bdi, line);
}

TEST(Bdi, PointersUseWideBase)
{
    BdiCompressor bdi;
    Line line;
    for (unsigned i = 0; i < kLineBytes; i += 8)
        storeLe(line.data() + i, 0x7f8090a0b000ull + (i % 64) * 8, 8);
    const auto c = bdi.compress(line);
    EXPECT_LT(c.sizeBits, kLineBits / 2);
    expectRoundTrip(bdi, line);
}

TEST(Bdi, RandomLineFallsBackToRaw)
{
    BdiCompressor bdi;
    const auto line = randomLine(42);
    const auto c = bdi.compress(line);
    EXPECT_EQ(c.encoding, kRawEncoding);
    EXPECT_EQ(c.sizeBits, kLineBits);
    expectRoundTrip(bdi, line);
}

TEST(Bdi, NegativeDeltasRoundTrip)
{
    BdiCompressor bdi;
    const auto line = patternLine32([](unsigned i) {
        return 5000u - i * 7;
    });
    expectRoundTrip(bdi, line);
}

TEST(Bdi, MixedImmediateAndBase)
{
    BdiCompressor bdi;
    // Alternate small values (immediates) and values near a large base.
    const auto line = patternLine32([](unsigned i) {
        return (i % 2) ? 0x40000000u + i : i;
    });
    expectRoundTrip(bdi, line);
}

TEST(Bdi, LatencyMatchesPaper)
{
    BdiCompressor bdi;
    EXPECT_EQ(bdi.compressLatency(), 2u);
    EXPECT_EQ(bdi.decompressLatency(), 2u);
    EXPECT_DOUBLE_EQ(bdi.compressEnergyNj(), 0.192);
    EXPECT_DOUBLE_EQ(bdi.decompressEnergyNj(), 0.056);
}

// --------------------------------------------------------------- FPC

TEST(Fpc, ZeroLineCompressesToRuns)
{
    FpcCompressor fpc;
    const auto line = zeroLine();
    const auto c = fpc.compress(line);
    // 32 zero words -> 4 max-length runs of 8 -> 4 * 6 bits.
    EXPECT_EQ(c.sizeBits, 24u);
    expectRoundTrip(fpc, line);
}

TEST(Fpc, SmallSignedValues)
{
    FpcCompressor fpc;
    const auto line = patternLine32([](unsigned i) {
        return static_cast<std::uint32_t>(
            static_cast<std::int32_t>(i % 16) - 8);
    });
    const auto c = fpc.compress(line);
    EXPECT_LT(c.sizeBits, kLineBits / 2);
    expectRoundTrip(fpc, line);
}

TEST(Fpc, RepeatedBytePattern)
{
    FpcCompressor fpc;
    const auto line = patternLine32(
        [](unsigned) { return 0xabababab; });
    const auto c = fpc.compress(line);
    EXPECT_EQ(c.sizeBits, 32u * 11u);
    expectRoundTrip(fpc, line);
}

TEST(Fpc, ZeroPaddedHalfwords)
{
    FpcCompressor fpc;
    const auto line = patternLine32([](unsigned i) {
        return (0x4000u + i) << 16;
    });
    expectRoundTrip(fpc, line);
}

TEST(Fpc, TwoHalfwordsSignExtended)
{
    FpcCompressor fpc;
    const auto line = patternLine32([](unsigned i) {
        const std::uint16_t lo = static_cast<std::uint16_t>(
            static_cast<std::int16_t>(-5 - static_cast<int>(i % 3)));
        const std::uint16_t hi = static_cast<std::uint16_t>(i % 7);
        return (static_cast<std::uint32_t>(hi) << 16) | lo;
    });
    expectRoundTrip(fpc, line);
}

TEST(Fpc, IncompressibleFallsBack)
{
    FpcCompressor fpc;
    const auto line = randomLine(77);
    const auto c = fpc.compress(line);
    EXPECT_EQ(c.encoding, kRawEncoding);
    expectRoundTrip(fpc, line);
}

// ------------------------------------------------------------- CPACK-Z

TEST(Cpack, ZeroLineDetected)
{
    CpackCompressor cpack;
    const auto line = zeroLine();
    const auto c = cpack.compress(line);
    EXPECT_EQ(c.encoding, CpackCompressor::kEncZeroLine);
    EXPECT_EQ(c.sizeBits, 8u);
    expectRoundTrip(cpack, line);
}

TEST(Cpack, RepeatedWordsHitDictionary)
{
    CpackCompressor cpack;
    const auto line = patternLine32([](unsigned i) {
        return 0xdead0000u + (i % 4) * 0x1111;
    });
    const auto c = cpack.compress(line);
    // After 4 unique words everything is a 6-bit dictionary hit.
    EXPECT_LT(c.sizeBits, 4 * 34 + 28 * 6 + 8u);
    expectRoundTrip(cpack, line);
}

TEST(Cpack, PartialMatchesUpper24)
{
    CpackCompressor cpack;
    const auto line = patternLine32([](unsigned i) {
        return 0xaabbcc00u | (i & 0xff);
    });
    expectRoundTrip(cpack, line);
}

TEST(Cpack, LowByteOnlyWords)
{
    CpackCompressor cpack;
    const auto line = patternLine32(
        [](unsigned i) { return i & 0xffu; });
    expectRoundTrip(cpack, line);
}

TEST(Cpack, RandomLineFallsBack)
{
    CpackCompressor cpack;
    const auto line = randomLine(1234);
    expectRoundTrip(cpack, line);
}

// --------------------------------------------------------------- BPC

TEST(Bpc, ZeroLine)
{
    BpcCompressor bpc;
    const auto line = zeroLine();
    const auto c = bpc.compress(line);
    EXPECT_LT(c.sizeBits, 32u);
    expectRoundTrip(bpc, line);
}

TEST(Bpc, ConstantStrideRampCompressesHard)
{
    BpcCompressor bpc;
    // Constant large stride: deltas identical -> DBX planes all zero.
    const auto line = patternLine32([](unsigned i) {
        return 123456u + i * 50000u;
    });
    const auto c = bpc.compress(line);
    EXPECT_LT(c.sizeBits, kLineBits / 6)
        << "linear ramps are BPC's best case";
    expectRoundTrip(bpc, line);
}

TEST(Bpc, NoisyRampStillCompresses)
{
    BpcCompressor bpc;
    const auto line = patternLine32([](unsigned i) {
        return 1000u + i * 4 + (i % 3);
    });
    const auto c = bpc.compress(line);
    EXPECT_LT(c.sizeBits, kLineBits / 2);
    expectRoundTrip(bpc, line);
}

TEST(Bpc, NegativeStride)
{
    BpcCompressor bpc;
    const auto line = patternLine32([](unsigned i) {
        return 0x70000000u - i * 0x10001u;
    });
    expectRoundTrip(bpc, line);
}

TEST(Bpc, RandomLineFallsBack)
{
    BpcCompressor bpc;
    const auto line = randomLine(999);
    const auto c = bpc.compress(line);
    EXPECT_EQ(c.sizeBits, kLineBits);
    expectRoundTrip(bpc, line);
}

TEST(Bpc, WrapAroundDeltas)
{
    BpcCompressor bpc;
    // Deltas that wrap the 32-bit space exercise the 33-bit delta path.
    const auto line = patternLine32([](unsigned i) {
        return (i % 2) ? 0xfffffff0u : 0x00000010u;
    });
    expectRoundTrip(bpc, line);
}

// ---------------------------------------------------------------- SC

TEST(Sc, RawBeforeCodesExist)
{
    ScCompressor sc;
    const auto line = patternLine32([](unsigned) { return 7u; });
    const auto c = sc.compress(line);
    EXPECT_EQ(c.encoding, kRawEncoding);
    EXPECT_EQ(c.sizeBits, kLineBits);
    expectRoundTrip(sc, line);
}

TEST(Sc, PaletteDataCompressesAfterTraining)
{
    ScCompressor sc;
    const std::uint32_t palette[4] = {0x3f800000, 0x40000000,
                                      0x40400000, 0x40800000};
    Rng rng(5);
    std::vector<Line> lines;
    for (unsigned n = 0; n < 64; ++n) {
        Line line;
        for (unsigned i = 0; i < kLineBytes / 4; ++i)
            storeLe(line.data() + 4 * i, palette[rng.below(4)], 4);
        lines.push_back(line);
        sc.trainLine(line);
    }
    sc.rebuildCodes();
    EXPECT_TRUE(sc.hasCodes());
    EXPECT_EQ(sc.generation(), 1u);

    double total_bits = 0;
    for (const auto &line : lines) {
        const auto c = sc.compress(line);
        total_bits += c.sizeBits;
        expectRoundTrip(sc, line);
    }
    // 4 roughly equiprobable symbols -> ~2 bits per 32-bit word.
    EXPECT_LT(total_bits / lines.size(), kLineBits / 8.0);
}

TEST(Sc, EscapeValuesRoundTrip)
{
    ScCompressor sc;
    Line trained{};
    for (unsigned i = 0; i < kLineBytes / 4; ++i)
        storeLe(trained.data() + 4 * i, 0xaaaa5555u, 4);
    sc.trainLine(trained);
    sc.rebuildCodes();

    // A line full of values SC never saw must escape and round trip.
    const auto line = randomLine(31337);
    const auto c = sc.compress(line);
    expectRoundTrip(sc, line);
}

TEST(Sc, GenerationBumpOnRebuild)
{
    ScCompressor sc;
    Line line{};
    sc.trainLine(line);
    EXPECT_EQ(sc.rebuildCodes(), 1u);
    sc.trainLine(line);
    EXPECT_EQ(sc.rebuildCodes(), 2u);
}

TEST(Sc, VftSaturatesAtCapacity)
{
    ValueFrequencyTable vft(16, 12);
    for (std::uint32_t v = 0; v < 64; ++v)
        vft.record(v);
    EXPECT_EQ(vft.size(), 16u);
    EXPECT_EQ(vft.misses(), 48u);
}

TEST(Sc, VftCountersSaturate)
{
    ValueFrequencyTable vft(4, 4); // counters max out at 15
    for (unsigned i = 0; i < 100; ++i)
        vft.record(42);
    const auto snapshot = vft.snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    EXPECT_EQ(snapshot[0].second, 15u);
}

// ------------------------------------------------ Cross-algorithm sweeps

class RoundTripAllAlgorithms
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RoundTripAllAlgorithms, RandomisedLines)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    for (const CompressorId id : allCompressorIds()) {
        auto engine = makeCompressor(id);
        if (id == CompressorId::Sc) {
            auto *sc = static_cast<ScCompressor *>(engine.get());
            for (unsigned i = 0; i < 16; ++i)
                sc->trainLine(randomLine(seed + i));
            sc->rebuildCodes();
        }

        for (unsigned n = 0; n < 16; ++n) {
            // Mix of structured and unstructured lines.
            Line line;
            const auto kind = rng.below(4);
            switch (kind) {
              case 0:
                line = randomLine(rng.next());
                break;
              case 1:
                line = patternLine32([](unsigned i) { return i * 17; });
                break;
              case 2:
                line = zeroLine();
                break;
              default: {
                line = randomLine(rng.next());
                // Sparse: zero most of it.
                for (unsigned i = 0; i < kLineBytes; ++i)
                    if (i % 16 != 0)
                        line[i] = 0;
                break;
              }
            }
            expectRoundTrip(*engine, line);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripAllAlgorithms,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));
