/**
 * @file
 * Tests for the observability layer: ring-buffer flight-recorder
 * semantics, Chrome trace-event export validity, reconciliation of
 * event counts against the StatGroup counters, the bit-identity of
 * traced vs untraced runs, the per-EP timeline export and the
 * StatVisitor-based JSON serialisation of a stat hierarchy.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/driver.hh"
#include "runner/json.hh"
#include "trace/sink.hh"
#include "trace/tracer.hh"
#include "workloads/zoo.hh"

using namespace latte;

namespace
{

/** A cut-down machine so each traced run costs milliseconds. */
DriverOptions
tinyOptions()
{
    DriverOptions options;
    options.cfg.numSms = 2;
    options.maxInstructionsPerKernel = 20'000;
    return options;
}

WorkloadRunResult
runTraced(PolicyKind kind, Tracer *tracer)
{
    const Workload *workload = findWorkload("KM");
    EXPECT_NE(workload, nullptr);
    RunRequest request;
    request.workload = workload;
    request.policy = kind;
    request.options = tinyOptions();
    request.tracer = tracer;
    return run(request).value();
}

} // namespace

TEST(Tracer, RingOverwritesOldestButCountsStayExact)
{
    Tracer tracer(8);
    EXPECT_EQ(tracer.capacity(), 8u);

    for (std::uint64_t i = 0; i < 20; ++i) {
        TraceEvent ev = makeTraceEvent(i, TraceEventKind::L1Hit, 0);
        ev.arg0 = i;
        tracer.record(ev);
    }
    TraceEvent ep = makeTraceEvent(20, TraceEventKind::EpBoundary, 0);
    tracer.record(ep);

    EXPECT_EQ(tracer.recorded(), 21u);
    EXPECT_EQ(tracer.size(), 8u);
    EXPECT_EQ(tracer.dropped(), 13u);
    // Drops never corrupt the per-kind totals.
    EXPECT_EQ(tracer.countOf(TraceEventKind::L1Hit), 20u);
    EXPECT_EQ(tracer.countOf(TraceEventKind::EpBoundary), 1u);
    EXPECT_EQ(tracer.countOf(TraceEventKind::L1Miss), 0u);

    // forEach walks the retained window oldest-to-newest.
    std::vector<Cycles> stamps;
    tracer.forEach([&](const TraceEvent &ev) { stamps.push_back(ev.ts); });
    ASSERT_EQ(stamps.size(), 8u);
    for (std::size_t i = 0; i < stamps.size(); ++i)
        EXPECT_EQ(stamps[i], 13 + i);

    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.countOf(TraceEventKind::L1Hit), 0u);
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer tracer(8);
    tracer.setEnabled(false);
    tracer.record(makeTraceEvent(1, TraceEventKind::L1Hit, 0));
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.size(), 0u);
}

TEST(Trace, EventCountsReconcileWithRunCounters)
{
    Tracer tracer;
    const WorkloadRunResult result =
        runTraced(PolicyKind::LatteCc, &tracer);

    // One event per counted access, independent of ring drops. The
    // run's miss counter folds merged secondary misses in.
    EXPECT_EQ(tracer.countOf(TraceEventKind::L1Hit), result.hits);
    EXPECT_EQ(tracer.countOf(TraceEventKind::L1Miss) +
                  tracer.countOf(TraceEventKind::L1MissMerged),
              result.misses);

    // Every primary miss allocates exactly one MSHR.
    EXPECT_EQ(tracer.countOf(TraceEventKind::MshrAlloc),
              tracer.countOf(TraceEventKind::L1Miss));
    // Every primary miss eventually fills one line.
    EXPECT_LE(tracer.countOf(TraceEventKind::L1Insert),
              tracer.countOf(TraceEventKind::L1Miss));
    EXPECT_GT(tracer.countOf(TraceEventKind::L1Insert), 0u);

    // Kernel bracketing matches the result's kernel list.
    EXPECT_EQ(tracer.countOf(TraceEventKind::KernelBegin),
              result.kernels.size());
    EXPECT_EQ(tracer.countOf(TraceEventKind::KernelEnd),
              result.kernels.size());

    // Each SM's policy closes EPs; the result keeps SM 0's series.
    EXPECT_GE(tracer.countOf(TraceEventKind::EpBoundary),
              result.trace.size());
    EXPECT_GT(tracer.countOf(TraceEventKind::WarpIssue), 0u);
}

TEST(Trace, ChromeExportIsValidJson)
{
    Tracer tracer;
    const WorkloadRunResult result =
        runTraced(PolicyKind::LatteCc, &tracer);

    std::ostringstream os;
    ChromeTraceSink sink(os);
    sink.writeRun(result.workload + "/" + result.policyLabel, tracer);
    sink.finish();

    std::string error;
    const runner::Json parsed = runner::Json::parse(os.str(), &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_TRUE(parsed.contains("traceEvents"));
    const auto &events = parsed.at("traceEvents").asArray();
    ASSERT_FALSE(events.empty());

    // A process_name metadata record labels the run, and every event
    // carries the mandatory Chrome fields.
    bool saw_process_name = false;
    for (const auto &event : events) {
        ASSERT_TRUE(event.contains("ph"));
        ASSERT_TRUE(event.contains("pid"));
        if (event.at("ph").asString() == "M" &&
            event.at("name").asString() == "process_name") {
            saw_process_name = true;
        }
    }
    EXPECT_TRUE(saw_process_name);
}

TEST(Trace, TracedRunIsBitIdenticalToUntraced)
{
    Tracer tracer;
    const WorkloadRunResult traced =
        runTraced(PolicyKind::LatteCc, &tracer);
    const WorkloadRunResult untraced =
        runTraced(PolicyKind::LatteCc, nullptr);

    // Tracing is purely observational: the canonical JSON of the run
    // result must not change by a byte.
    EXPECT_EQ(runner::toJson(traced).dump(),
              runner::toJson(untraced).dump());
    EXPECT_GT(tracer.recorded(), 0u);
}

TEST(Trace, TimelineExportRoundTrips)
{
    const WorkloadRunResult result =
        runTraced(PolicyKind::LatteCc, nullptr);
    ASSERT_FALSE(result.trace.empty());

    const runner::Json timeline = runner::timelineToJson({result});
    std::string error;
    const runner::Json parsed =
        runner::Json::parse(timeline.dump(2), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(parsed.at("schema").asUint(), 1u);
    const auto &runs = parsed.at("runs").asArray();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].at("workload").asString(), result.workload);
    EXPECT_EQ(runs[0].at("policy").asString(), result.policyLabel);
    const auto &points = runs[0].at("points").asArray();
    ASSERT_EQ(points.size(), result.trace.size());
    for (const char *key :
         {"cycle", "tolerance", "mode", "capacityBytes",
          "decompQueueDepth", "samplerHits", "samplerMisses"}) {
        EXPECT_TRUE(points[0].contains(key)) << key;
    }
}

TEST(Trace, EventKindNamesAreStable)
{
    for (std::size_t k = 0; k < kNumTraceEventKinds; ++k) {
        const auto kind = static_cast<TraceEventKind>(k);
        ASSERT_NE(traceEventKindName(kind), nullptr);
        ASSERT_NE(traceEventKindCategory(kind), nullptr);
        EXPECT_GT(std::string(traceEventKindName(kind)).size(), 0u);
    }
}

TEST(Stats, VisitorJsonMatchesCollect)
{
    StatGroup root("gpu");
    Counter a(&root, "cycles", "elapsed cycles");
    StatGroup child("l1d0", &root);
    Counter b(&child, "hits", "read hits");
    Average c(&child, "ratio", "mean compression ratio");
    ++a;
    b += 3;
    c.sample(2.0);
    c.sample(4.0);

    // The flat map and the nested JSON come from the same visit().
    std::map<std::string, double> flat;
    root.collect(flat);
    EXPECT_EQ(flat.at("gpu.cycles"), 1.0);
    EXPECT_EQ(flat.at("gpu.l1d0.hits"), 3.0);
    EXPECT_EQ(flat.at("gpu.l1d0.ratio"), 3.0);

    const runner::Json json = runner::toJson(root);
    EXPECT_EQ(json.at("cycles").asDouble(), 1.0);
    EXPECT_EQ(json.at("l1d0").at("hits").asDouble(), 3.0);
    EXPECT_EQ(json.at("l1d0").at("ratio").asDouble(), 3.0);
}
