/**
 * @file
 * Ablation: dedicated sample sets per compression mode. More sets give
 * a cleaner capacity signal but tax more of the cache with non-winner
 * modes; the paper uses 4 of 32 sets per mode.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const std::uint32_t set_counts[] = {1, 2, 4, 8};
    const char *names[] = {"KM", "BC", "PRK", "STC"};

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        sweep.add(*workload, PolicyKind::Baseline);
        for (const std::uint32_t sets : set_counts) {
            DriverOptions options;
            options.cfg.latte.dedicatedSetsPerMode = sets;
            sweep.add(*workload, PolicyKind::LatteCc, options);
        }
    }

    std::cout << "=== Ablation: dedicated sets per mode (LATTE-CC "
                 "speedup vs baseline) ===\n";
    printHeader({"1", "2", "4", "8"});

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);

        std::vector<double> row;
        for (const std::uint32_t sets : set_counts) {
            DriverOptions options;
            options.cfg.latte.dedicatedSetsPerMode = sets;
            const auto &result =
                sweep.get(*workload, PolicyKind::LatteCc, options);
            row.push_back(speedupOver(base, result));
        }
        printRow(name, row);
    }

    std::cout << "\nExpected: flat-ish around the paper's 4 sets; very "
                 "few sets starve the estimator, many sets tax "
                 "hit-heavy workloads (STC).\n";
    return 0;
}
