/**
 * @file
 * Figure 16: effective L1 capacity over time for Similarity Score (SS)
 * under Static-BDI, Static-SC and LATTE-CC, relative to the 16 KB
 * baseline. The paper: BDI's capacity stays near 1x (SS data defeats
 * BDI), SC reaches ~3x, LATTE-CC hovers between 1-2x by choosing SC
 * only when the latency is hideable.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

namespace
{

void
printTrace(const char *label, const WorkloadRunResult &result,
           double base_kb)
{
    std::cout << "# " << label << ": ep capacity_ratio\n";
    std::size_t ep = 0;
    double sum = 0;
    for (const auto &point : result.trace) {
        const double ratio =
            static_cast<double>(point.effectiveCapacityBytes) / 1024.0 /
            base_kb;
        sum += ratio;
        if (ep % 8 == 0) {
            std::cout << ep << " " << std::fixed << std::setprecision(2)
                      << ratio << "\n";
        }
        ++ep;
    }
    std::cout << "# " << label << " mean ratio: "
              << sum / static_cast<double>(result.trace.size())
              << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const Workload *workload = findWorkload("SS");
    if (!workload)
        return 1;

    for (const PolicyKind kind :
         {PolicyKind::StaticBdi, PolicyKind::StaticSc, PolicyKind::LatteCc})
        sweep.add(*workload, kind);

    const GpuConfig cfg;
    const double base_kb = cfg.l1.sizeBytes / 1024.0;

    std::cout << "=== Figure 16: effective cache capacity over time "
                 "(SS, SM 0) ===\n";
    printTrace("Static-BDI",
               sweep.get(*workload, PolicyKind::StaticBdi), base_kb);
    printTrace("Static-SC",
               sweep.get(*workload, PolicyKind::StaticSc), base_kb);
    printTrace("LATTE-CC",
               sweep.get(*workload, PolicyKind::LatteCc), base_kb);

    std::cout << "Expected shape (paper): BDI ~1x throughout; SC the "
                 "highest; LATTE-CC in between, rising during "
                 "high-tolerance phases.\n";
    return 0;
}
