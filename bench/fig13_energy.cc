/**
 * @file
 * Figure 13: GPU energy normalised to the uncompressed baseline. Paper
 * C-Sens averages: LATTE-CC 0.90, Static-BDI 0.95, Static-SC ~1.0;
 * C-InSens: Static-SC +8.7% (up to +53% for HW).
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const std::vector<PolicyKind> kinds = {
        PolicyKind::StaticBdi, PolicyKind::StaticSc, PolicyKind::LatteCc,
        PolicyKind::KernelOpt};
    declareGrid(sweep, kinds);

    std::cout << "=== Figure 13: normalised GPU energy ===\n";
    printHeader({"BDI", "SC", "LATTE", "K-OPT"});

    for (const bool sensitive : {false, true}) {
        std::map<PolicyKind, std::vector<double>> per_policy;
        for (const auto *workload : workloadsByCategory(sensitive)) {
            const auto &base =
                sweep.get(*workload, PolicyKind::Baseline);
            const double base_mj = base.energy.totalMj();
            std::vector<double> row;
            for (const PolicyKind kind : kinds) {
                const double ratio =
                    sweep.get(*workload, kind).energy.totalMj() /
                    base_mj;
                row.push_back(ratio);
                per_policy[kind].push_back(ratio);
            }
            printRow(workload->abbr, row);
        }
        std::vector<double> means;
        for (const PolicyKind kind : kinds)
            means.push_back(geomean(per_policy[kind]));
        printRow(sensitive ? "SENS" : "INSEN", means);
        std::cout << "\n";
    }

    std::cout << "Expected shape (paper): LATTE-CC saves ~2x the energy "
                 "of Static-BDI on C-Sens; Static-SC *increases* energy "
                 "on C-InSens.\n";
    return 0;
}
