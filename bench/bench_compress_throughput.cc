/**
 * @file
 * Throughput gate for the compression hot path: lines/second of the
 * size-only probe() vs the full compress() (and decompressInto()) for
 * all five algorithms, over the same mixed value corpus the workloads
 * synthesise. Emits canonical JSON (BENCH_compress.json by default) so
 * CI can track the probe speedup as an artifact; the acceptance bar is
 * probe >= 2x compress on at least three of the five algorithms.
 *
 *   bench_compress_throughput [--json out.json] [--lines N] [--reps R]
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "compress/factory.hh"
#include "compress/sc.hh"
#include "runner/json.hh"
#include "workloads/value_gens.hh"

using namespace latte;
using namespace latte::runner;

namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;
using Clock = std::chrono::steady_clock;

/** The blend of value profiles the workloads use (as in Table I). */
std::vector<Line>
corpus(std::uint64_t seed, unsigned n)
{
    std::vector<std::shared_ptr<LineGenerator>> gens = {
        std::make_shared<IntArrayGen>(seed, 1000, 3, 5),
        std::make_shared<IntArrayGen>(seed ^ 1, 5, 50000, 0),
        std::make_shared<PaletteGen>(seed ^ 2, 64, true, 1.2, 0.15),
        std::make_shared<PointerArrayGen>(seed ^ 3, 0x7f0000000000ull,
                                          1 << 20),
        std::make_shared<ZeroGen>(),
        std::make_shared<FloatNoiseGen>(seed ^ 4, 1.0f, 0.8f),
    };
    std::vector<Line> lines(n);
    for (unsigned i = 0; i < n; ++i)
        gens[i % gens.size()]->generate(i * 128, lines[i]);
    return lines;
}

std::unique_ptr<Compressor>
trainedEngine(CompressorId id, const std::vector<Line> &lines)
{
    auto engine = makeCompressor(id);
    if (id == CompressorId::Sc) {
        auto *sc = static_cast<ScCompressor *>(engine.get());
        for (const auto &line : lines)
            sc->trainLine(line);
        sc->rebuildCodes();
    }
    return engine;
}

/**
 * Run @p op over the corpus @p reps times and return the best
 * lines/second (best-of-reps damps scheduler noise on shared machines).
 * @p op must return a value that depends on its work so the compiler
 * cannot elide the loop; the checksum is folded into @p sink.
 */
template <typename Op>
double
measure(const std::vector<Line> &lines, unsigned reps, std::uint64_t &sink,
        Op &&op)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        std::uint64_t checksum = 0;
        for (const auto &line : lines)
            checksum += op(line);
        const auto stop = Clock::now();
        sink ^= checksum;
        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        if (seconds > 0)
            best = std::max(best,
                            static_cast<double>(lines.size()) / seconds);
    }
    return best;
}

struct AlgoResult
{
    std::string name;
    double probeLinesPerSec = 0;
    double compressLinesPerSec = 0;
    double decompressLinesPerSec = 0;
    double probeSpeedup = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_compress.json";
    unsigned n_lines = 4096;
    unsigned reps = 5;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--lines" && i + 1 < argc) {
            n_lines = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = static_cast<unsigned>(std::stoul(argv[++i]));
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--json out.json] [--lines N] [--reps R]\n";
            return 2;
        }
    }

    const auto lines = corpus(7, n_lines);
    std::uint64_t sink = 0;
    std::vector<AlgoResult> results;
    unsigned fast_probes = 0;

    for (const CompressorId id : allCompressorIds()) {
        auto engine = trainedEngine(id, lines);
        AlgoResult res;
        res.name = engine->name();

        res.probeLinesPerSec = measure(
            lines, reps, sink,
            [&](const Line &line) { return engine->probe(line).sizeBits; });
        res.compressLinesPerSec = measure(
            lines, reps, sink, [&](const Line &line) {
                return engine->compress(line).sizeBits;
            });

        std::vector<CompressedLine> compressed;
        compressed.reserve(lines.size());
        for (const auto &line : lines)
            compressed.push_back(engine->compress(line));
        std::size_t i = 0;
        Line scratch;
        res.decompressLinesPerSec = measure(
            lines, reps, sink, [&](const Line &) {
                engine->decompressInto(compressed[i++ % compressed.size()],
                                       scratch);
                return static_cast<std::uint64_t>(scratch[0]);
            });

        res.probeSpeedup = res.compressLinesPerSec > 0
                               ? res.probeLinesPerSec /
                                     res.compressLinesPerSec
                               : 0;
        if (res.probeSpeedup >= 2.0)
            ++fast_probes;
        results.push_back(res);
    }

    std::cout << "=== compression hot-path throughput (" << n_lines
              << " lines, best of " << reps << ") ===\n";
    std::cout << std::left << std::setw(10) << "algo" << std::right
              << std::setw(16) << "probe (l/s)" << std::setw(16)
              << "compress (l/s)" << std::setw(16) << "decomp (l/s)"
              << std::setw(12) << "probe/comp" << "\n";
    for (const auto &res : results) {
        std::cout << std::left << std::setw(10) << res.name << std::right
                  << std::fixed << std::setprecision(0) << std::setw(16)
                  << res.probeLinesPerSec << std::setw(16)
                  << res.compressLinesPerSec << std::setw(16)
                  << res.decompressLinesPerSec << std::setprecision(2)
                  << std::setw(12) << res.probeSpeedup << "\n";
    }
    std::cout << fast_probes
              << "/5 algorithms with probe >= 2x compress (gate: >= 3)\n"
              << "(checksum " << sink << ")\n";

    Json::Object algos;
    for (const auto &res : results) {
        algos.emplace(
            res.name,
            Json(Json::Object{
                {"probeLinesPerSec", Json(res.probeLinesPerSec)},
                {"compressLinesPerSec", Json(res.compressLinesPerSec)},
                {"decompressLinesPerSec", Json(res.decompressLinesPerSec)},
                {"probeSpeedup", Json(res.probeSpeedup)},
            }));
    }
    const Json doc(Json::Object{
        {"benchmark", Json(std::string("compress_throughput"))},
        {"lineBytes", Json(std::uint64_t{kLineBytes})},
        {"lines", Json(std::uint64_t{n_lines})},
        {"reps", Json(std::uint64_t{reps})},
        {"probeAtLeast2xCount", Json(std::uint64_t{fast_probes})},
        {"algorithms", Json(std::move(algos))},
    });

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    out << doc.dump() << "\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
