/**
 * @file
 * Throughput gate for the compression hot path: lines/second of the
 * size-only probe() vs the full compress() (and decompressInto()) for
 * all five algorithms, over the same mixed value corpus the workloads
 * synthesise. Emits canonical JSON (BENCH_compress.json by default) so
 * CI can track the probe speedup as an artifact; the acceptance bars
 * are probe >= 2x compress on at least three of the five algorithms
 * (measured on the scalar reference kernels, so the ratio stays a
 * property of the algorithm design), and batched probeLines() on the
 * best SIMD backend >= 2x the scalar per-line BDI+FPC mix (the L1
 * fill path's hot blend).
 *
 *   bench_compress_throughput [--json out.json] [--lines N] [--reps R]
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compress/backend.hh"
#include "compress/factory.hh"
#include "compress/sc.hh"
#include "runner/json.hh"
#include "workloads/value_gens.hh"

using namespace latte;
using namespace latte::runner;

namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;
using Clock = std::chrono::steady_clock;

/** The blend of value profiles the workloads use (as in Table I). */
std::vector<Line>
corpus(std::uint64_t seed, unsigned n)
{
    std::vector<std::shared_ptr<LineGenerator>> gens = {
        std::make_shared<IntArrayGen>(seed, 1000, 3, 5),
        std::make_shared<IntArrayGen>(seed ^ 1, 5, 50000, 0),
        std::make_shared<PaletteGen>(seed ^ 2, 64, true, 1.2, 0.15),
        std::make_shared<PointerArrayGen>(seed ^ 3, 0x7f0000000000ull,
                                          1 << 20),
        std::make_shared<ZeroGen>(),
        std::make_shared<FloatNoiseGen>(seed ^ 4, 1.0f, 0.8f),
    };
    std::vector<Line> lines(n);
    for (unsigned i = 0; i < n; ++i)
        gens[i % gens.size()]->generate(i * 128, lines[i]);
    return lines;
}

std::unique_ptr<Compressor>
trainedEngine(CompressorId id, const std::vector<Line> &lines)
{
    auto engine = makeCompressor(id);
    if (id == CompressorId::Sc) {
        auto *sc = static_cast<ScCompressor *>(engine.get());
        for (const auto &line : lines)
            sc->trainLine(line);
        sc->rebuildCodes();
    }
    return engine;
}

/**
 * Run @p op over the corpus @p reps times and return the best
 * lines/second (best-of-reps damps scheduler noise on shared machines).
 * @p op must return a value that depends on its work so the compiler
 * cannot elide the loop; the checksum is folded into @p sink.
 */
template <typename Op>
double
measure(const std::vector<Line> &lines, unsigned reps, std::uint64_t &sink,
        Op &&op)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        std::uint64_t checksum = 0;
        for (const auto &line : lines)
            checksum += op(line);
        const auto stop = Clock::now();
        sink ^= checksum;
        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        if (seconds > 0)
            best = std::max(best,
                            static_cast<double>(lines.size()) / seconds);
    }
    return best;
}

/**
 * Best lines/second of one batched probeLines() sweep over the whole
 * corpus (the vector<Line> storage is contiguous, so it doubles as the
 * flat batch buffer the API takes).
 */
double
measureBatched(const std::vector<Line> &lines, unsigned reps,
               std::uint64_t &sink, Compressor &engine)
{
    const std::span<const std::uint8_t> flat(lines.front().data(),
                                             lines.size() * kLineBytes);
    std::vector<LineMeta> metas(lines.size());
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        engine.probeLines(flat, metas);
        const auto stop = Clock::now();
        std::uint64_t checksum = 0;
        for (const LineMeta &meta : metas)
            checksum += meta.sizeBits;
        sink ^= checksum;
        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        if (seconds > 0)
            best = std::max(best,
                            static_cast<double>(lines.size()) / seconds);
    }
    return best;
}

/** Lines/second of a BDI+FPC blend from the two per-algo rates. */
double
mixRate(double bdi, double fpc)
{
    if (bdi <= 0 || fpc <= 0)
        return 0;
    return 2.0 / (1.0 / bdi + 1.0 / fpc);
}

struct AlgoResult
{
    std::string name;
    double probeLinesPerSec = 0;
    double compressLinesPerSec = 0;
    double decompressLinesPerSec = 0;
    double probeSpeedup = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_compress.json";
    unsigned n_lines = 4096;
    unsigned reps = 5;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--lines" && i + 1 < argc) {
            n_lines = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = static_cast<unsigned>(std::stoul(argv[++i]));
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--json out.json] [--lines N] [--reps R]\n";
            return 2;
        }
    }

    const auto lines = corpus(7, n_lines);
    std::uint64_t sink = 0;
    std::vector<AlgoResult> results;
    unsigned fast_probes = 0;

    std::map<CompressorId, std::unique_ptr<Compressor>> engines;
    for (const CompressorId id : allCompressorIds())
        engines.emplace(id, trainedEngine(id, lines));

    // The per-algorithm table measures the portable scalar reference
    // kernels, so the probe/compress ratios characterise the algorithm
    // design and stay comparable across hosts; the SIMD tiers are
    // compared against each other (and against this baseline) below.
    const CompressorBackend &entry_backend = activeCompressorBackend();
    setCompressorBackend(*resolveCompressorBackend("scalar", nullptr));

    for (const CompressorId id : allCompressorIds()) {
        Compressor *engine = engines.at(id).get();
        AlgoResult res;
        res.name = engine->name();

        res.probeLinesPerSec = measure(
            lines, reps, sink,
            [&](const Line &line) { return engine->probe(line).sizeBits; });
        res.compressLinesPerSec = measure(
            lines, reps, sink, [&](const Line &line) {
                return engine->compress(line).sizeBits;
            });

        std::vector<CompressedLine> compressed;
        compressed.reserve(lines.size());
        for (const auto &line : lines)
            compressed.push_back(engine->compress(line));
        std::size_t i = 0;
        Line scratch;
        res.decompressLinesPerSec = measure(
            lines, reps, sink, [&](const Line &) {
                engine->decompressInto(compressed[i++ % compressed.size()],
                                       scratch);
                return static_cast<std::uint64_t>(scratch[0]);
            });

        res.probeSpeedup = res.compressLinesPerSec > 0
                               ? res.probeLinesPerSec /
                                     res.compressLinesPerSec
                               : 0;
        if (res.probeSpeedup >= 2.0)
            ++fast_probes;
        results.push_back(res);
    }

    std::cout << "=== compression hot-path throughput (" << n_lines
              << " lines, best of " << reps << ") ===\n";
    std::cout << std::left << std::setw(10) << "algo" << std::right
              << std::setw(16) << "probe (l/s)" << std::setw(16)
              << "compress (l/s)" << std::setw(16) << "decomp (l/s)"
              << std::setw(12) << "probe/comp" << "\n";
    for (const auto &res : results) {
        std::cout << std::left << std::setw(10) << res.name << std::right
                  << std::fixed << std::setprecision(0) << std::setw(16)
                  << res.probeLinesPerSec << std::setw(16)
                  << res.compressLinesPerSec << std::setw(16)
                  << res.decompressLinesPerSec << std::setprecision(2)
                  << std::setw(12) << res.probeSpeedup << "\n";
    }

    // --- Backend sweep: batched probeLines() per dispatch tier. The
    // baseline is the pre-batching fill path — per-line probe() on the
    // scalar kernels — and the headline number is how much faster the
    // best backend runs the batched BDI+FPC blend (the two modes the
    // adaptive policies lean on hardest).
    const double scalar_bdi_perline = measure(
        lines, reps, sink, [&](const Line &line) {
            return engines.at(CompressorId::Bdi)->probe(line).sizeBits;
        });
    const double scalar_fpc_perline = measure(
        lines, reps, sink, [&](const Line &line) {
            return engines.at(CompressorId::Fpc)->probe(line).sizeBits;
        });
    const double scalar_perline_mix =
        mixRate(scalar_bdi_perline, scalar_fpc_perline);

    Json::Object backends_json;
    double best_mix = 0;
    std::string best_backend;
    std::cout << "\n=== batched probeLines() by backend (l/s) ===\n";
    std::cout << std::left << std::setw(10) << "backend";
    for (const CompressorId id : allCompressorIds())
        std::cout << std::right << std::setw(12)
                  << engines.at(id)->name();
    std::cout << std::right << std::setw(14) << "bdi+fpc mix" << "\n";
    for (const CompressorBackend &backend : compressorBackends()) {
        if (!compressorBackendSupported(backend))
            continue;
        setCompressorBackend(backend);
        Json::Object per_algo;
        double bdi_rate = 0, fpc_rate = 0;
        std::cout << std::left << std::setw(10) << backend.name
                  << std::right << std::fixed << std::setprecision(0);
        for (const CompressorId id : allCompressorIds()) {
            const double rate =
                measureBatched(lines, reps, sink, *engines.at(id));
            per_algo.emplace(engines.at(id)->name(), Json(rate));
            std::cout << std::setw(12) << rate;
            if (id == CompressorId::Bdi)
                bdi_rate = rate;
            else if (id == CompressorId::Fpc)
                fpc_rate = rate;
        }
        const double mix = mixRate(bdi_rate, fpc_rate);
        per_algo.emplace("bdiFpcMixLinesPerSec", Json(mix));
        backends_json.emplace(backend.name, Json(std::move(per_algo)));
        std::cout << std::setw(14) << mix << "\n";
        if (mix > best_mix) {
            best_mix = mix;
            best_backend = backend.name;
        }
    }
    setCompressorBackend(entry_backend);
    const double mix_speedup =
        scalar_perline_mix > 0 ? best_mix / scalar_perline_mix : 0;

    std::cout << fast_probes
              << "/5 algorithms with probe >= 2x compress (gate: >= 3)\n"
              << std::setprecision(2) << "bdi+fpc mix: batched "
              << best_backend << " is " << mix_speedup
              << "x the scalar per-line baseline (gate: >= 2)\n"
              << "(checksum " << sink << ")\n";

    Json::Object algos;
    for (const auto &res : results) {
        algos.emplace(
            res.name,
            Json(Json::Object{
                {"probeLinesPerSec", Json(res.probeLinesPerSec)},
                {"compressLinesPerSec", Json(res.compressLinesPerSec)},
                {"decompressLinesPerSec", Json(res.decompressLinesPerSec)},
                {"probeSpeedup", Json(res.probeSpeedup)},
            }));
    }
    const Json doc(Json::Object{
        {"benchmark", Json(std::string("compress_throughput"))},
        {"lineBytes", Json(std::uint64_t{kLineBytes})},
        {"lines", Json(std::uint64_t{n_lines})},
        {"reps", Json(std::uint64_t{reps})},
        {"probeAtLeast2xCount", Json(std::uint64_t{fast_probes})},
        {"algorithms", Json(std::move(algos))},
        {"backend", Json(std::string(entry_backend.name))},
        {"backends", Json(std::move(backends_json))},
        {"bestBackend", Json(best_backend)},
        {"scalarPerLineMixLinesPerSec", Json(scalar_perline_mix)},
        {"bdiFpcMixSpeedup", Json(mix_speedup)},
    });

    std::ofstream out(json_path);
    if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    out << doc.dump() << "\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
