/**
 * @file
 * Figure 3: the performance upper bound of static compression — the
 * effective-capacity benefit with decompression latency forced to zero
 * (CacheTuning::chargeDecompression = false).
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main()
{
    DriverOptions free_latency;
    free_latency.tuning.chargeDecompression = false;
    RunCache upper(free_latency);
    RunCache base;

    std::cout << "=== Figure 3: speedup upper bound (capacity only, "
                 "zero decompression latency) ===\n";
    printHeader({"BDI", "SC"});

    std::vector<double> bdi_all, sc_all;
    for (const auto &workload : workloadZoo()) {
        const auto &baseline = base.get(workload, PolicyKind::Baseline);
        const double bdi = speedupOver(
            baseline, upper.get(workload, PolicyKind::StaticBdi));
        const double sc = speedupOver(
            baseline, upper.get(workload, PolicyKind::StaticSc));
        bdi_all.push_back(bdi);
        sc_all.push_back(sc);
        printRow(workload.abbr, {bdi, sc});
    }
    printRow("gmean", {geomean(bdi_all), geomean(sc_all)});

    std::cout << "\nExpected shape (paper): every bar >= 1.0; SC's "
                 "bound >= BDI's for temporally-local workloads.\n";
    return 0;
}
