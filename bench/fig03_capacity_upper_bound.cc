/**
 * @file
 * Figure 3: the performance upper bound of static compression — the
 * effective-capacity benefit with decompression latency forced to zero
 * (CacheTuning::chargeDecompression = false).
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    DriverOptions free_latency;
    free_latency.tuning.chargeDecompression = false;

    for (const auto &workload : workloadZoo()) {
        sweep.add(workload, PolicyKind::Baseline);
        sweep.add(workload, PolicyKind::StaticBdi, free_latency);
        sweep.add(workload, PolicyKind::StaticSc, free_latency);
    }

    std::cout << "=== Figure 3: speedup upper bound (capacity only, "
                 "zero decompression latency) ===\n";
    printHeader({"BDI", "SC"});

    std::vector<double> bdi_all, sc_all;
    for (const auto &workload : workloadZoo()) {
        const auto &baseline = sweep.get(workload, PolicyKind::Baseline);
        const double bdi = speedupOver(
            baseline,
            sweep.get(workload, PolicyKind::StaticBdi, free_latency));
        const double sc = speedupOver(
            baseline,
            sweep.get(workload, PolicyKind::StaticSc, free_latency));
        bdi_all.push_back(bdi);
        sc_all.push_back(sc);
        printRow(workload.abbr, {bdi, sc});
    }
    printRow("gmean", {geomean(bdi_all), geomean(sc_all)});

    std::cout << "\nExpected shape (paper): every bar >= 1.0; SC's "
                 "bound >= BDI's for temporally-local workloads.\n";
    return 0;
}
