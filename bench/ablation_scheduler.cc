/**
 * @file
 * Ablation: warp scheduling policy. The paper's tolerance estimator is
 * formulated for GTO (greedy run lengths); under loose round-robin the
 * estimate degenerates to the ready-warp count. This run compares both
 * schedulers under the baseline and under LATTE-CC.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const char *names[] = {"KM", "SS", "BC", "PRK", "HOT"};

    DriverOptions gto;
    DriverOptions lrr;
    lrr.cfg.schedPolicy = GpuConfig::SchedPolicy::LRR;

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        for (const auto &options : {gto, lrr}) {
            sweep.add(*workload, PolicyKind::Baseline, options);
            sweep.add(*workload, PolicyKind::LatteCc, options);
        }
    }

    std::cout << "=== Ablation: GTO vs LRR scheduling (cycles, and "
                 "LATTE-CC speedup under each) ===\n";
    std::cout << std::left << std::setw(6) << "wl" << std::right
              << std::setw(12) << "gto_base" << std::setw(12)
              << "lrr_base" << std::setw(12) << "gto_latte"
              << std::setw(12) << "lrr_latte" << "\n";

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;

        const auto &gto_base =
            sweep.get(*workload, PolicyKind::Baseline, gto);
        const auto &lrr_base =
            sweep.get(*workload, PolicyKind::Baseline, lrr);
        const auto &gto_latte =
            sweep.get(*workload, PolicyKind::LatteCc, gto);
        const auto &lrr_latte =
            sweep.get(*workload, PolicyKind::LatteCc, lrr);

        std::cout << std::left << std::setw(6) << name << std::right
                  << std::setw(12) << gto_base.cycles << std::setw(12)
                  << lrr_base.cycles << std::fixed
                  << std::setprecision(3) << std::setw(12)
                  << speedupOver(gto_base, gto_latte) << std::setw(12)
                  << speedupOver(lrr_base, lrr_latte) << "\n"
                  << std::flush;
    }

    std::cout << "\nLATTE-CC's gains should persist under both "
                 "schedulers (the estimator adapts via run lengths).\n";
    return 0;
}
