/**
 * @file
 * Table I: the algorithm comparison — modelled decompression latency,
 * exploited value locality and measured compression ratio on canonical
 * value corpora, plus google-benchmark microbenchmarks of the software
 * engines' encode/decode throughput.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <iomanip>
#include <iostream>

#include "common/rng.hh"
#include "compress/factory.hh"
#include "compress/sc.hh"
#include "mem/memory_image.hh"
#include "workloads/value_gens.hh"

using namespace latte;

namespace
{

using Line = std::array<std::uint8_t, kLineBytes>;

std::vector<Line>
corpus(std::uint64_t seed, unsigned n)
{
    // A blend of the value profiles the workloads use.
    std::vector<std::shared_ptr<LineGenerator>> gens = {
        std::make_shared<IntArrayGen>(seed, 1000, 3, 5),
        std::make_shared<IntArrayGen>(seed ^ 1, 5, 50000, 0),
        std::make_shared<PaletteGen>(seed ^ 2, 64, true, 1.2, 0.15),
        std::make_shared<PointerArrayGen>(seed ^ 3, 0x7f0000000000ull,
                                          1 << 20),
        std::make_shared<ZeroGen>(),
    };
    std::vector<Line> lines(n);
    for (unsigned i = 0; i < n; ++i)
        gens[i % gens.size()]->generate(i * 128, lines[i]);
    return lines;
}

std::unique_ptr<Compressor>
trainedEngine(CompressorId id, const std::vector<Line> &lines)
{
    auto engine = makeCompressor(id);
    if (id == CompressorId::Sc) {
        auto *sc = static_cast<ScCompressor *>(engine.get());
        for (const auto &line : lines)
            sc->trainLine(line);
        sc->rebuildCodes();
    }
    return engine;
}

void
compressThroughput(benchmark::State &state)
{
    const auto id = static_cast<CompressorId>(state.range(0));
    const auto lines = corpus(7, 256);
    auto engine = trainedEngine(id, lines);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine->compress(lines[i++ % lines.size()]));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineBytes);
    state.SetLabel(compressorName(id));
}

void
decompressThroughput(benchmark::State &state)
{
    const auto id = static_cast<CompressorId>(state.range(0));
    const auto lines = corpus(7, 256);
    auto engine = trainedEngine(id, lines);
    std::vector<CompressedLine> compressed;
    compressed.reserve(lines.size());
    for (const auto &line : lines)
        compressed.push_back(engine->compress(line));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine->decompress(compressed[i++ % compressed.size()]));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineBytes);
    state.SetLabel(compressorName(id));
}

void
printTableOne()
{
    const auto lines = corpus(7, 1024);
    std::cout << "=== Table I: algorithm comparison (mixed corpus) "
                 "===\n";
    std::cout << std::left << std::setw(10) << "algo" << std::right
              << std::setw(12) << "decomp(cy)" << std::setw(12)
              << "comp(cy)" << std::setw(10) << "ratio"
              << "   locality\n";
    const char *locality[] = {"", "spatial", "spatial", "both",
                              "spatial", "temporal"};
    for (const CompressorId id : allCompressorIds()) {
        auto engine = trainedEngine(id, lines);
        double bits = 0;
        for (const auto &line : lines)
            bits += engine->compress(line).sizeBits;
        const double ratio =
            lines.size() * static_cast<double>(kLineBits) / bits;
        std::cout << std::left << std::setw(10) << engine->name()
                  << std::right << std::setw(12)
                  << engine->decompressLatency() << std::setw(12)
                  << engine->compressLatency() << std::fixed
                  << std::setprecision(2) << std::setw(10) << ratio
                  << "   " << locality[static_cast<int>(id)] << "\n";
    }
    std::cout << "\n";
}

} // namespace

BENCHMARK(compressThroughput)
    ->Arg(static_cast<int>(CompressorId::Bdi))
    ->Arg(static_cast<int>(CompressorId::Fpc))
    ->Arg(static_cast<int>(CompressorId::CpackZ))
    ->Arg(static_cast<int>(CompressorId::Bpc))
    ->Arg(static_cast<int>(CompressorId::Sc));

BENCHMARK(decompressThroughput)
    ->Arg(static_cast<int>(CompressorId::Bdi))
    ->Arg(static_cast<int>(CompressorId::Fpc))
    ->Arg(static_cast<int>(CompressorId::CpackZ))
    ->Arg(static_cast<int>(CompressorId::Bpc))
    ->Arg(static_cast<int>(CompressorId::Sc));

int
main(int argc, char **argv)
{
    printTableOne();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
