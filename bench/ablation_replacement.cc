/**
 * @file
 * Ablation: L1 replacement policy under compression. Compressed caches
 * interact with replacement (a victim frees a variable number of
 * sub-blocks); this sweep checks that LATTE-CC's gains are not an
 * artifact of LRU by comparing LRU, FIFO and SRRIP.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const char *names[] = {"KM", "BC", "PRK", "DJK"};
    const struct
    {
        const char *label;
        GpuConfig::ReplPolicy policy;
    } policies[] = {
        {"LRU", GpuConfig::ReplPolicy::LRU},
        {"FIFO", GpuConfig::ReplPolicy::FIFO},
        {"SRRIP", GpuConfig::ReplPolicy::SRRIP},
    };

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        for (const auto &entry : policies) {
            DriverOptions options;
            options.cfg.l1Repl = entry.policy;
            sweep.add(*workload, PolicyKind::Baseline, options);
            sweep.add(*workload, PolicyKind::LatteCc, options);
        }
    }

    std::cout << "=== Ablation: replacement policy (LATTE-CC speedup "
                 "vs same-policy baseline) ===\n";
    printHeader({"LRU", "FIFO", "SRRIP"});

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;

        std::vector<double> row;
        for (const auto &entry : policies) {
            DriverOptions options;
            options.cfg.l1Repl = entry.policy;
            const auto &base =
                sweep.get(*workload, PolicyKind::Baseline, options);
            const auto &latte =
                sweep.get(*workload, PolicyKind::LatteCc, options);
            row.push_back(speedupOver(base, latte));
        }
        printRow(name, row);
    }

    std::cout << "\nExpected: gains persist under all three policies "
                 "(compression benefits are not LRU artifacts).\n";
    return 0;
}
