/**
 * @file
 * Figure 1: performance sensitivity to added L1 hit latency. The paper
 * shows PRK insensitive up to 14 extra cycles, CLR/MIS tolerating ~9,
 * and BC/FW degrading quickly. We sweep the base L1 hit latency and
 * report IPC normalised to the 1-cycle configuration.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const char *names[] = {"PRK", "CLR", "MIS", "BC", "FW"};
    const Cycles extra_latencies[] = {0, 2, 5, 9, 14};

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        for (const Cycles extra : extra_latencies) {
            DriverOptions options;
            options.cfg.l1.hitLatency = 1 + extra;
            sweep.add(*workload, PolicyKind::Baseline, options);
        }
    }

    std::cout << "=== Figure 1: IPC vs added L1 hit latency "
                 "(normalised to +0) ===\n";
    printHeader({"+0", "+2", "+5", "+9", "+14"});

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;

        std::vector<double> row;
        double base_ipc = 0;
        for (const Cycles extra : extra_latencies) {
            DriverOptions options;
            options.cfg.l1.hitLatency = 1 + extra;
            const auto &result =
                sweep.get(*workload, PolicyKind::Baseline, options);
            const double ipc =
                static_cast<double>(result.instructions) /
                static_cast<double>(result.cycles);
            if (extra == 0)
                base_ipc = ipc;
            row.push_back(ipc / base_ipc);
        }
        printRow(name, row);
    }

    std::cout << "\nExpected shape (paper): PRK flat; CLR/MIS hold to "
                 "~+9; BC/FW degrade steadily.\n";
    return 0;
}
