/**
 * @file
 * Figure 5: GPU latency tolerance over time for Similarity Score (SS).
 * The paper shows distinct high / moderate / low tolerance regions
 * within one execution. We print the per-EP tolerance estimate from
 * SM 0 plus a bucketed summary.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const Workload *workload = findWorkload("SS");
    if (!workload)
        return 1;

    const auto &result = sweep.get(*workload, PolicyKind::Baseline);

    std::cout << "=== Figure 5: latency tolerance over time (SS, SM 0, "
                 "one point per EP) ===\n";
    std::cout << "# ep cycle tolerance\n";
    std::size_t ep = 0;
    for (const auto &point : result.trace) {
        std::cout << ep++ << " " << point.cycle << " " << std::fixed
                  << std::setprecision(2) << point.latencyTolerance
                  << "\n";
    }

    // Bucket the run into high / moderate / low tolerance time.
    std::uint64_t high = 0, moderate = 0, low = 0;
    for (const auto &point : result.trace) {
        if (point.latencyTolerance >= 14)
            ++high;
        else if (point.latencyTolerance >= 2)
            ++moderate;
        else
            ++low;
    }
    const double total =
        static_cast<double>(result.trace.size());
    std::cout << "\nsummary: high(>=14cy) " << 100.0 * high / total
              << "%  moderate(2..14) " << 100.0 * moderate / total
              << "%  low(<2) " << 100.0 * low / total << "%\n";
    std::cout << "Expected shape (paper): SS cycles through high, "
                 "moderate and low tolerance phases.\n";
    return 0;
}
