/**
 * @file
 * Figure 12: L1 miss reduction vs the uncompressed baseline. Paper
 * C-Sens averages: LATTE-CC 24.6%, Static-BDI 19.2%, Static-SC 28.7%
 * (SC reduces the most misses yet loses performance — the latency
 * story of Section V-A).
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const std::vector<PolicyKind> kinds = {
        PolicyKind::StaticBdi, PolicyKind::StaticSc, PolicyKind::LatteCc,
        PolicyKind::KernelOpt};
    declareGrid(sweep, kinds);

    std::cout << "=== Figure 12: L1 miss reduction (%) vs baseline ===\n";
    printHeader({"BDI", "SC", "LATTE", "K-OPT"});

    for (const bool sensitive : {false, true}) {
        std::map<PolicyKind, std::vector<double>> per_policy;
        for (const auto *workload : workloadsByCategory(sensitive)) {
            const auto &base =
                sweep.get(*workload, PolicyKind::Baseline);
            std::vector<double> row;
            for (const PolicyKind kind : kinds) {
                const auto &result = sweep.get(*workload, kind);
                const double reduction =
                    base.misses == 0
                        ? 0.0
                        : 100.0 *
                              (1.0 - static_cast<double>(result.misses) /
                                         static_cast<double>(
                                             base.misses));
                row.push_back(reduction);
                per_policy[kind].push_back(reduction);
            }
            printRow(workload->abbr, row, 10, 1);
        }
        std::vector<double> means;
        for (const PolicyKind kind : kinds) {
            double sum = 0;
            for (const double v : per_policy[kind])
                sum += v;
            means.push_back(sum /
                            static_cast<double>(per_policy[kind].size()));
        }
        printRow(sensitive ? "SENS" : "INSEN", means, 10, 1);
        std::cout << "\n";
    }

    std::cout << "Expected shape (paper, C-Sens): SC removes the most "
                 "misses, LATTE-CC next, BDI least — while Figure 11's "
                 "performance ordering is LATTE > BDI > SC.\n";
    return 0;
}
