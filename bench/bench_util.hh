/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: cached workload
 * runs, geometric means and table formatting.
 */

#ifndef LATTE_BENCH_BENCH_UTIL_HH
#define LATTE_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/driver.hh"
#include "workloads/zoo.hh"

namespace latte::bench
{

/** Run (workload, policy) once per binary invocation; cache the result. */
class RunCache
{
  public:
    explicit RunCache(DriverOptions options = {})
        : options_(std::move(options))
    {}

    const WorkloadRunResult &
    get(const Workload &workload, PolicyKind kind)
    {
        const std::string key =
            workload.abbr + "/" + policyName(kind);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            it = cache_.emplace(key,
                                runWorkload(workload, kind, options_))
                     .first;
        }
        return it->second;
    }

    const DriverOptions &options() const { return options_; }

  private:
    DriverOptions options_;
    std::map<std::string, WorkloadRunResult> cache_;
};

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Print one row of right-aligned numeric cells. */
inline void
printRow(const std::string &label, const std::vector<double> &cells,
         int width = 10, int precision = 3)
{
    std::cout << std::left << std::setw(6) << label << std::right
              << std::fixed << std::setprecision(precision);
    for (const double cell : cells)
        std::cout << std::setw(width) << cell;
    std::cout << "\n" << std::flush;
}

/** Print a header row. */
inline void
printHeader(const std::vector<std::string> &columns, int width = 10)
{
    std::cout << std::left << std::setw(6) << "wl" << std::right;
    for (const auto &column : columns)
        std::cout << std::setw(width) << column;
    std::cout << "\n";
}

} // namespace latte::bench

#endif // LATTE_BENCH_BENCH_UTIL_HH
