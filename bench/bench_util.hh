/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: the parallel
 * sweep harness (latte::runner::Sweep), geometric means and table
 * formatting. A typical figure binary declares its whole
 * (workload x policy) grid with Sweep::add() and then reads cells with
 * Sweep::get(); the first get() executes everything pending across the
 * -j worker threads, consulting the --cache-dir result cache if given.
 */

#ifndef LATTE_BENCH_BENCH_UTIL_HH
#define LATTE_BENCH_BENCH_UTIL_HH

#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/driver.hh"
#include "runner/sweep.hh"
#include "workloads/zoo.hh"

namespace latte::bench
{

using runner::Sweep;

/**
 * Geometric mean of a vector of ratios (latte::geomean: non-positive
 * entries are skipped with a warning instead of poisoning the mean).
 */
using latte::geomean;

/**
 * Run (workload, policy) once per binary invocation; cache the result.
 * @deprecated Thin wrapper over runner::Sweep kept for source
 * compatibility: cells are keyed by the full RunKey (workload, policy
 * and DriverOptions hash), so two RunCaches with different tunings no
 * longer alias, but every get() is serial. New code should declare its
 * grid on a Sweep and let the thread pool run it.
 */
class RunCache
{
  public:
    explicit RunCache(DriverOptions options = {})
        : sweep_(serialCli(), std::move(options))
    {}

    const WorkloadRunResult &
    get(const Workload &workload, PolicyKind kind)
    {
        return sweep_.get(workload, kind);
    }

    const DriverOptions &options() const { return sweep_.defaults(); }

  private:
    static runner::SweepCliOptions
    serialCli()
    {
        runner::SweepCliOptions cli;
        cli.jobs = 1;
        cli.progress = false;
        return cli;
    }

    runner::Sweep sweep_;
};

/** Print one row of right-aligned numeric cells. */
inline void
printRow(const std::string &label, const std::vector<double> &cells,
         int width = 10, int precision = 3)
{
    std::cout << std::left << std::setw(6) << label << std::right
              << std::fixed << std::setprecision(precision);
    for (const double cell : cells)
        std::cout << std::setw(width) << cell;
    std::cout << "\n" << std::flush;
}

/** Print a header row. */
inline void
printHeader(const std::vector<std::string> &columns, int width = 10)
{
    std::cout << std::left << std::setw(6) << "wl" << std::right;
    for (const auto &column : columns)
        std::cout << std::setw(width) << column;
    std::cout << "\n";
}

} // namespace latte::bench

#endif // LATTE_BENCH_BENCH_UTIL_HH
