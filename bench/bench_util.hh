/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: the parallel
 * sweep harness (latte::runner::Sweep), geometric means and table
 * formatting. A typical figure binary declares its whole
 * (workload x policy) grid with Sweep::add() and then reads cells with
 * Sweep::get(); the first get() executes everything pending across the
 * -j worker threads, consulting the --cache-dir result cache if given.
 */

#ifndef LATTE_BENCH_BENCH_UTIL_HH
#define LATTE_BENCH_BENCH_UTIL_HH

#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/driver.hh"
#include "runner/sweep.hh"
#include "workloads/zoo.hh"

namespace latte::bench
{

using runner::Sweep;

/**
 * Geometric mean of a vector of ratios (latte::geomean: non-positive
 * entries are skipped with a warning instead of poisoning the mean).
 */
using latte::geomean;

/**
 * The canonical per-figure grid as a declarative SweepSpec: every
 * workload (the whole zoo, or C-Sens only) runs Baseline first and
 * then each of @p kinds. The expansion order matches the historical
 * hand-written add() loops, so RunKeys, cache entries and --json
 * exports are unchanged; the same spec can also be dumped with
 * toJson() and submitted to latted as-is.
 */
inline runner::SweepSpec
figureGridSpec(const std::vector<PolicyKind> &kinds,
               bool sensitive_only = false)
{
    runner::SweepSpec spec;
    if (sensitive_only)
        for (const auto *workload : workloadsByCategory(true))
            spec.workloads.push_back(workload->abbr);
    spec.policies.push_back(policyName(PolicyKind::Baseline));
    for (const PolicyKind kind : kinds)
        spec.policies.push_back(policyName(kind));
    return spec;
}

/** Declare the canonical figure grid (Baseline + @p kinds) on @p sweep. */
inline void
declareGrid(Sweep &sweep, const std::vector<PolicyKind> &kinds,
            bool sensitive_only = false)
{
    sweep.add(figureGridSpec(kinds, sensitive_only));
}

/**
 * Run (workload, policy) once per binary invocation; cache the result.
 * @deprecated Thin wrapper over runner::Sweep kept for source
 * compatibility: cells are keyed by the full RunKey (workload, policy
 * and DriverOptions hash), so two RunCaches with different tunings no
 * longer alias, but every get() is serial. New code should declare its
 * grid on a Sweep and let the thread pool run it.
 */
class RunCache
{
  public:
    explicit RunCache(DriverOptions options = {})
        : sweep_(serialCli(), std::move(options))
    {}

    const WorkloadRunResult &
    get(const Workload &workload, PolicyKind kind)
    {
        return sweep_.get(workload, kind);
    }

    const DriverOptions &options() const { return sweep_.defaults(); }

  private:
    static runner::SweepCliOptions
    serialCli()
    {
        runner::SweepCliOptions cli;
        cli.jobs = 1;
        cli.progress = false;
        return cli;
    }

    runner::Sweep sweep_;
};

/** Print one row of right-aligned numeric cells. */
inline void
printRow(const std::string &label, const std::vector<double> &cells,
         int width = 10, int precision = 3)
{
    std::cout << std::left << std::setw(6) << label << std::right
              << std::fixed << std::setprecision(precision);
    for (const double cell : cells)
        std::cout << std::setw(width) << cell;
    std::cout << "\n" << std::flush;
}

/** Print a header row. */
inline void
printHeader(const std::vector<std::string> &columns, int width = 10)
{
    std::cout << std::left << std::setw(6) << "wl" << std::right;
    for (const auto &column : columns)
        std::cout << std::setw(width) << column;
    std::cout << "\n";
}

} // namespace latte::bench

#endif // LATTE_BENCH_BENCH_UTIL_HH
