/**
 * @file
 * Table III: the workload catalog — suite, classification and measured
 * classification criterion (speedup with a 4x L1; >= 1.2 is C-Sens).
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    DriverOptions big_opts;
    big_opts.cfg.l1.sizeBytes = 64 * 1024;

    for (const auto &workload : workloadZoo()) {
        sweep.add(workload, PolicyKind::Baseline);
        sweep.add(workload, PolicyKind::Baseline, big_opts);
    }

    std::cout << "=== Table III: benchmarks (4x-L1 speedup is the "
                 "classification criterion, Sec IV-B) ===\n";
    std::cout << std::left << std::setw(6) << "abbr" << std::setw(28)
              << "application" << std::setw(12) << "suite"
              << std::setw(10) << "category" << std::right
              << std::setw(8) << "4xL1" << "\n";

    bool all_consistent = true;
    for (const auto &workload : workloadZoo()) {
        const double speedup = speedupOver(
            sweep.get(workload, PolicyKind::Baseline),
            sweep.get(workload, PolicyKind::Baseline, big_opts));
        const bool measured_sensitive = speedup >= 1.2;
        if (measured_sensitive != workload.cacheSensitive)
            all_consistent = false;
        std::cout << std::left << std::setw(6) << workload.abbr
                  << std::setw(28) << workload.fullName << std::setw(12)
                  << workload.suite << std::setw(10)
                  << (workload.cacheSensitive ? "C-Sens" : "C-InSens")
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(8) << speedup
                  << (measured_sensitive != workload.cacheSensitive
                          ? "  <-- category mismatch"
                          : "")
                  << "\n" << std::flush;
    }
    std::cout << (all_consistent
                      ? "\nAll categories consistent with the measured "
                        "criterion.\n"
                      : "\nWARNING: some measured categories disagree "
                        "with their Table III label.\n");
    return 0;
}
