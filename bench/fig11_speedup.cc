/**
 * @file
 * Figure 11 — the headline result: speedup of Static-BDI, Static-SC,
 * LATTE-CC and the Kernel-OPT oracle over the uncompressed baseline,
 * for every workload, with per-category averages. Paper numbers for
 * C-Sens: LATTE-CC +19.2% (up to +48.4%), Static-BDI +13.7%,
 * Static-SC -8.2%, and LATTE-CC slightly above Kernel-OPT.
 */

#include <chrono>

#include "bench_util.hh"
#include "common/logging.hh"

using namespace latte;
using namespace latte::bench;

namespace
{

/**
 * --sim-threads scaling probe: time the C-Sens half of the fig11 mix
 * on a large (16-SM) configuration at 1, 2 and "auto" SM-stepping
 * threads and record cycles/sec plus speedup over sequential in the
 * --bench-out report. Runs latte::run() directly — the Sweep result
 * cache would collapse the thread settings into one cell, since
 * simThreads is deliberately not part of the RunKey fingerprint.
 * CI gates the "auto" speedup at >= 1.3x on >= 4-core runners.
 */
void
runScalingProbe(Sweep &sweep)
{
    DriverOptions options = sweep.defaults();
    options.cfg.numSms = 16;

    runner::Json::Array entries;
    double sequential_cps = 0;
    for (const char *threads : {"1", "2", "auto"}) {
        std::uint64_t cycles = 0;
        std::uint32_t resolved = 1;
        const auto start = std::chrono::steady_clock::now();
        for (const auto *workload : workloadsByCategory(true)) {
            RunRequest request;
            request.workload = workload;
            request.policy = PolicyKind::LatteCc;
            request.options = options;
            request.options.simThreads = threads;
            const RunOutcome outcome = latte::run(request);
            if (!outcome.ok())
                latte_fatal("scaling probe failed on {} at "
                            "--sim-threads={}: {}",
                            workload->abbr, threads,
                            outcome.error.message);
            cycles += outcome.value().cycles;
            resolved = outcome.simThreads;
        }
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        const double cps =
            seconds > 0 ? static_cast<double>(cycles) / seconds : 0.0;
        if (sequential_cps == 0)
            sequential_cps = cps;

        runner::Json::Object entry;
        entry["sim_threads"] = std::string(threads);
        entry["resolved_threads"] =
            static_cast<std::uint64_t>(resolved);
        entry["num_sms"] =
            static_cast<std::uint64_t>(options.cfg.numSms);
        entry["wall_seconds"] = seconds;
        entry["sim_cycles"] = cycles;
        entry["cycles_per_second"] = cps;
        entry["speedup_vs_sequential"] =
            sequential_cps > 0 ? cps / sequential_cps : 0.0;
        entries.push_back(runner::Json(std::move(entry)));
        std::cout << "scaling probe: --sim-threads=" << threads
                  << " (resolved " << resolved << ") "
                  << static_cast<std::uint64_t>(cps) << " cycles/s\n";
    }
    sweep.addBenchExtra("sim_thread_scaling",
                        runner::Json(std::move(entries)));
}

/**
 * Compression-down-the-hierarchy probe: the fig11 grid with the L2
 * also compressed. One BDI-friendly workload (NW) and one
 * BDI-resistant one (KM) across l2.compress in {off, static:bdi,
 * latte}, recorded in the --bench-out report so CI tracks that the
 * compressed-L2 rows keep running end-to-end and that the adaptive
 * row never loses to off by more than noise.
 */
void
runL2CompressGrid(Sweep &sweep)
{
    const struct { const char *spec; PolicyKind kind; } rows[] = {
        {"off", PolicyKind::Baseline},
        {"static:bdi", PolicyKind::L2StaticBdi},
        {"latte", PolicyKind::L2Latte},
    };

    runner::Json::Array entries;
    for (const char *abbr : {"NW", "KM"}) {
        const Workload *workload = findWorkload(abbr);
        if (!workload)
            continue;
        double off_cycles = 0;
        for (const auto &row : rows) {
            RunRequest request;
            request.workload = workload;
            request.policy = row.kind;
            request.options = sweep.defaults();
            const RunOutcome outcome = latte::run(request);
            if (!outcome.ok())
                latte_fatal("l2-compress grid failed on {} at "
                            "l2.compress={}: {}",
                            abbr, row.spec, outcome.error.message);
            const WorkloadRunResult &result = outcome.value();
            if (off_cycles == 0)
                off_cycles = static_cast<double>(result.cycles);

            runner::Json::Object entry;
            entry["workload"] = std::string(abbr);
            entry["l2_compress"] = std::string(row.spec);
            entry["cycles"] = result.cycles;
            entry["speedup_vs_off"] =
                off_cycles > 0
                    ? off_cycles / static_cast<double>(result.cycles)
                    : 0.0;
            const auto compressed = result.stats.find(
                "gpu.l2.compress.compressed_insertions");
            entry["l2_compressed_insertions"] =
                compressed != result.stats.end() ? compressed->second
                                                 : 0.0;
            entry["energy_mj"] = result.energy.totalMj();
            entries.push_back(runner::Json(std::move(entry)));
            std::cout << "l2-compress grid: " << abbr
                      << " l2.compress=" << row.spec << " "
                      << result.cycles << " cycles\n";
        }
    }
    sweep.addBenchExtra("l2_compress_grid",
                        runner::Json(std::move(entries)));
}

} // namespace

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const std::vector<PolicyKind> kinds = {
        PolicyKind::StaticBdi, PolicyKind::StaticSc, PolicyKind::LatteCc,
        PolicyKind::KernelOpt};
    declareGrid(sweep, kinds);

    std::cout << "=== Figure 11: speedup over the uncompressed baseline "
                 "===\n";
    printHeader({"BDI", "SC", "LATTE", "K-OPT"});

    for (const bool sensitive : {false, true}) {
        std::map<PolicyKind, std::vector<double>> per_policy;
        for (const auto *workload : workloadsByCategory(sensitive)) {
            const auto &base =
                sweep.get(*workload, PolicyKind::Baseline);
            std::vector<double> row;
            for (const PolicyKind kind : kinds) {
                const double speedup =
                    speedupOver(base, sweep.get(*workload, kind));
                row.push_back(speedup);
                per_policy[kind].push_back(speedup);
            }
            printRow(workload->abbr, row);
        }
        std::vector<double> means;
        for (const PolicyKind kind : kinds)
            means.push_back(geomean(per_policy[kind]));
        printRow(sensitive ? "SENS" : "INSEN", means);
        std::cout << "\n";
    }

    std::cout << "Expected shape (paper, C-Sens averages): LATTE-CC > "
                 "Static-BDI > 1.0 > Static-SC; LATTE-CC >= Kernel-OPT. "
                 "C-InSens: LATTE/BDI ~1.0, SC < 1.0.\n";

    if (!sweep.benchPath().empty()) {
        runScalingProbe(sweep);
        runL2CompressGrid(sweep);
    }
    return 0;
}
