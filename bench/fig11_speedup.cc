/**
 * @file
 * Figure 11 — the headline result: speedup of Static-BDI, Static-SC,
 * LATTE-CC and the Kernel-OPT oracle over the uncompressed baseline,
 * for every workload, with per-category averages. Paper numbers for
 * C-Sens: LATTE-CC +19.2% (up to +48.4%), Static-BDI +13.7%,
 * Static-SC -8.2%, and LATTE-CC slightly above Kernel-OPT.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const std::vector<PolicyKind> kinds = {
        PolicyKind::StaticBdi, PolicyKind::StaticSc, PolicyKind::LatteCc,
        PolicyKind::KernelOpt};
    declareGrid(sweep, kinds);

    std::cout << "=== Figure 11: speedup over the uncompressed baseline "
                 "===\n";
    printHeader({"BDI", "SC", "LATTE", "K-OPT"});

    for (const bool sensitive : {false, true}) {
        std::map<PolicyKind, std::vector<double>> per_policy;
        for (const auto *workload : workloadsByCategory(sensitive)) {
            const auto &base =
                sweep.get(*workload, PolicyKind::Baseline);
            std::vector<double> row;
            for (const PolicyKind kind : kinds) {
                const double speedup =
                    speedupOver(base, sweep.get(*workload, kind));
                row.push_back(speedup);
                per_policy[kind].push_back(speedup);
            }
            printRow(workload->abbr, row);
        }
        std::vector<double> means;
        for (const PolicyKind kind : kinds)
            means.push_back(geomean(per_policy[kind]));
        printRow(sensitive ? "SENS" : "INSEN", means);
        std::cout << "\n";
    }

    std::cout << "Expected shape (paper, C-Sens averages): LATTE-CC > "
                 "Static-BDI > 1.0 > Static-SC; LATTE-CC >= Kernel-OPT. "
                 "C-InSens: LATTE/BDI ~1.0, SC < 1.0.\n";
    return 0;
}
