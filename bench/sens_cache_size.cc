/**
 * @file
 * Section V-E sensitivity study: a 48 KB L1 (the alternative
 * L1/shared-memory split on NVIDIA parts). The paper: LATTE-CC still
 * gains ~6% on C-Sens (BDI ~3%) — smaller than at 16 KB, because the
 * larger cache already captures much of the working set.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    DriverOptions big;
    big.cfg.l1.sizeBytes = 48 * 1024;
    big.cfg.sharedMemBytes = 16 * 1024;
    Sweep sweep(argc, argv, big);

    for (const auto *workload : workloadsByCategory(true)) {
        sweep.add(*workload, PolicyKind::Baseline);
        sweep.add(*workload, PolicyKind::StaticBdi);
        sweep.add(*workload, PolicyKind::StaticSc);
        sweep.add(*workload, PolicyKind::LatteCc);
    }

    std::cout << "=== Sensitivity: 48 KB L1 / 16 KB shared memory "
                 "(C-Sens) ===\n";
    printHeader({"BDI", "SC", "LATTE"});

    std::vector<double> b, s, l;
    for (const auto *workload : workloadsByCategory(true)) {
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);
        const double bdi = speedupOver(
            base, sweep.get(*workload, PolicyKind::StaticBdi));
        const double sc = speedupOver(
            base, sweep.get(*workload, PolicyKind::StaticSc));
        const double latte = speedupOver(
            base, sweep.get(*workload, PolicyKind::LatteCc));
        b.push_back(bdi);
        s.push_back(sc);
        l.push_back(latte);
        printRow(workload->abbr, {bdi, sc, latte});
    }
    printRow("gmean", {geomean(b), geomean(s), geomean(l)});

    std::cout << "\nExpected shape (paper): gains shrink vs the 16 KB "
                 "configuration but LATTE-CC still leads BDI.\n";
    return 0;
}
