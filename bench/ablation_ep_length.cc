/**
 * @file
 * Ablation: LATTE-CC's experimental-phase length. The paper fixes
 * EP = 256 L1 accesses (Section IV-C3); this sweep shows the trade-off —
 * short EPs react faster but sample noisier counters, long EPs lag
 * phase changes. Reported: C-Sens phase-changing workloads (KM, SS, VM)
 * plus a stable one (BC).
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const std::uint32_t ep_lengths[] = {64, 128, 256, 512, 1024};
    const char *names[] = {"KM", "SS", "VM", "BC"};

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        sweep.add(*workload, PolicyKind::Baseline);
        for (const std::uint32_t ep : ep_lengths) {
            DriverOptions options;
            options.cfg.latte.epAccesses = ep;
            sweep.add(*workload, PolicyKind::LatteCc, options);
        }
    }

    std::cout << "=== Ablation: EP length (LATTE-CC speedup vs "
                 "baseline) ===\n";
    printHeader({"64", "128", "256", "512", "1024"});

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);

        std::vector<double> row;
        for (const std::uint32_t ep : ep_lengths) {
            DriverOptions options;
            options.cfg.latte.epAccesses = ep;
            const auto &result =
                sweep.get(*workload, PolicyKind::LatteCc, options);
            row.push_back(speedupOver(base, result));
        }
        printRow(name, row);
    }

    std::cout << "\nDesign point: 256 accesses (the paper's choice) "
                 "should sit at or near the best column.\n";
    return 0;
}
