/**
 * @file
 * Ablation: LATTE-CC's experimental-phase length. The paper fixes
 * EP = 256 L1 accesses (Section IV-C3); this sweep shows the trade-off —
 * short EPs react faster but sample noisier counters, long EPs lag
 * phase changes. Reported: C-Sens phase-changing workloads (KM, SS, VM)
 * plus a stable one (BC).
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main()
{
    const std::uint32_t ep_lengths[] = {64, 128, 256, 512, 1024};
    const char *names[] = {"KM", "SS", "VM", "BC"};

    std::cout << "=== Ablation: EP length (LATTE-CC speedup vs "
                 "baseline) ===\n";
    printHeader({"64", "128", "256", "512", "1024"});

    for (const char *name : names) {
        const Workload *workload = findWorkload(name);
        if (!workload)
            continue;
        const auto base = runWorkload(*workload, PolicyKind::Baseline);

        std::vector<double> row;
        for (const std::uint32_t ep : ep_lengths) {
            DriverOptions options;
            options.cfg.latte.epAccesses = ep;
            const auto result =
                runWorkload(*workload, PolicyKind::LatteCc, options);
            row.push_back(speedupOver(base, result));
        }
        printRow(name, row);
    }

    std::cout << "\nDesign point: 256 accesses (the paper's choice) "
                 "should sit at or near the best column.\n";
    return 0;
}
