/**
 * @file
 * Ablation: every compression algorithm as a static L1 mode — including
 * FPC and C-PACK+Z, which the paper characterises (Figure 2) but does
 * not deploy, because their ratios trail BDI/BPC/SC on GPU data. This
 * run quantifies that choice end-to-end.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main()
{
    const CompressorId modes[] = {CompressorId::Bdi, CompressorId::Fpc,
                                  CompressorId::CpackZ, CompressorId::Bpc,
                                  CompressorId::Sc};

    std::cout << "=== Ablation: all five algorithms as static L1 modes "
                 "(speedup vs baseline, C-Sens) ===\n";
    printHeader({"BDI", "FPC", "CPACK", "BPC", "SC"});

    std::map<CompressorId, std::vector<double>> all;
    for (const auto *workload : workloadsByCategory(true)) {
        const auto base = runWorkload(*workload, PolicyKind::Baseline);
        std::vector<double> row;
        for (const CompressorId mode : modes) {
            const auto result = runWorkloadCustom(
                *workload, [mode](const GpuConfig &cfg) {
                    return std::make_unique<StaticPolicy>(cfg, mode);
                });
            const double speedup = speedupOver(base, result);
            row.push_back(speedup);
            all[mode].push_back(speedup);
        }
        printRow(workload->abbr, row);
    }

    std::vector<double> means;
    for (const CompressorId mode : modes)
        means.push_back(geomean(all[mode]));
    printRow("gmean", means);

    std::cout << "\nExpected: FPC/CPACK trail BDI (weaker ratios on GPU "
                 "data, Figure 2), justifying the paper's BDI/SC/BPC "
                 "mode selection.\n";
    return 0;
}
