/**
 * @file
 * Ablation: every compression algorithm as a static L1 mode — including
 * FPC and C-PACK+Z, which the paper characterises (Figure 2) but does
 * not deploy, because their ratios trail BDI/BPC/SC on GPU data. This
 * run quantifies that choice end-to-end. Uses RunRequest with a custom
 * PolicyFactory (and a per-mode label) for the modes that have no
 * PolicyKind of their own.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

namespace
{

RunRequest
staticModeRequest(const Workload &workload, CompressorId mode)
{
    RunRequest request;
    request.workload = &workload;
    request.policy = [mode](const GpuConfig &cfg) {
        return std::make_unique<StaticPolicy>(cfg, mode);
    };
    request.label = std::string("Static-") + compressorName(mode);
    return request;
}

} // namespace

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const CompressorId modes[] = {CompressorId::Bdi, CompressorId::Fpc,
                                  CompressorId::CpackZ, CompressorId::Bpc,
                                  CompressorId::Sc};

    for (const auto *workload : workloadsByCategory(true)) {
        sweep.add(*workload, PolicyKind::Baseline);
        for (const CompressorId mode : modes)
            sweep.add(staticModeRequest(*workload, mode));
    }

    std::cout << "=== Ablation: all five algorithms as static L1 modes "
                 "(speedup vs baseline, C-Sens) ===\n";
    printHeader({"BDI", "FPC", "CPACK", "BPC", "SC"});

    std::map<CompressorId, std::vector<double>> all;
    for (const auto *workload : workloadsByCategory(true)) {
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);
        std::vector<double> row;
        for (const CompressorId mode : modes) {
            const auto &result =
                sweep.get(staticModeRequest(*workload, mode));
            const double speedup = speedupOver(base, result);
            row.push_back(speedup);
            all[mode].push_back(speedup);
        }
        printRow(workload->abbr, row);
    }

    std::vector<double> means;
    for (const CompressorId mode : modes)
        means.push_back(geomean(all[mode]));
    printRow("gmean", means);

    std::cout << "\nExpected: FPC/CPACK trail BDI (weaker ratios on GPU "
                 "data, Figure 2), justifying the paper's BDI/SC/BPC "
                 "mode selection.\n";
    return 0;
}
