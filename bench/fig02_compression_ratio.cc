/**
 * @file
 * Figure 2: compression ratio of all cache lines inserted into the L1
 * data caches, for the five algorithms, across the workload zoo. Lines
 * are collected by running each workload's first kernel under the
 * uncompressed baseline and compressing every inserted line offline.
 * Table I's qualitative ordering (SC/BPC/BDI > FPC/CPACK) should emerge.
 */

#include <cmath>
#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "compress/factory.hh"
#include "compress/sc.hh"
#include "mem/memory_image.hh"
#include "workloads/zoo.hh"

using namespace latte;

namespace
{

/** Collect the distinct lines a workload's accesses touch. */
std::vector<std::array<std::uint8_t, 128>>
collectLines(const Workload &workload, unsigned max_lines)
{
    MemoryImage mem;
    workload.setup(mem);

    std::vector<std::array<std::uint8_t, 128>> lines;
    std::map<Addr, bool> seen;

    auto kernels = makeKernels(workload);
    auto &kernel = *kernels.front();
    const std::uint32_t warps =
        kernel.numCtas() * kernel.warpsPerCta();

    for (std::uint32_t w = 0; w < warps && lines.size() < max_lines;
         w += 7) {
        for (std::uint64_t pc = 0; pc < 400 && lines.size() < max_lines;
             ++pc) {
            const DecodedInstr instr = kernel.fetch(w, pc);
            if (instr.op == Op::Exit)
                break;
            if (instr.op != Op::Load)
                continue;
            for (const Addr addr : instr.laneAddrs) {
                const Addr line_addr = MemoryImage::lineAddr(addr);
                if (seen.emplace(line_addr, true).second) {
                    lines.push_back(mem.line(line_addr));
                    if (lines.size() >= max_lines)
                        break;
                }
            }
        }
    }
    return lines;
}

} // namespace

int
main()
{
    constexpr unsigned kMaxLines = 2000;

    std::cout << "=== Figure 2: L1-inserted line compression ratio by "
                 "algorithm ===\n";
    std::cout << std::left << std::setw(6) << "wl" << std::setw(9)
              << "cat";
    for (const CompressorId id : allCompressorIds())
        std::cout << std::right << std::setw(9) << compressorName(id);
    std::cout << "\n";

    std::map<CompressorId, double> geo_sum;
    unsigned n_workloads = 0;

    for (const auto &workload : workloadZoo()) {
        const auto lines = collectLines(workload, kMaxLines);
        if (lines.empty())
            continue;
        ++n_workloads;

        std::cout << std::left << std::setw(6) << workload.abbr
                  << std::setw(9)
                  << (workload.cacheSensitive ? "C-Sens" : "C-InSens");

        for (const CompressorId id : allCompressorIds()) {
            auto engine = makeCompressor(id);
            if (id == CompressorId::Sc) {
                auto *sc = static_cast<ScCompressor *>(engine.get());
                for (const auto &line : lines)
                    sc->trainLine(line);
                sc->rebuildCodes();
            }
            double bits = 0;
            for (const auto &line : lines)
                bits += engine->compress(line).sizeBits;
            const double ratio =
                lines.size() * static_cast<double>(kLineBits) / bits;
            geo_sum[id] += std::log(ratio);
            std::cout << std::right << std::fixed << std::setprecision(2)
                      << std::setw(9) << ratio;
        }
        std::cout << "\n";
    }

    std::cout << std::left << std::setw(15) << "geomean";
    for (const CompressorId id : allCompressorIds()) {
        std::cout << std::right << std::fixed << std::setprecision(2)
                  << std::setw(9)
                  << std::exp(geo_sum[id] / n_workloads);
    }
    std::cout << "\n";
    return 0;
}
