/**
 * @file
 * Figure 4: the cost side in isolation — decompression latency charged
 * on every compressed hit while the capacity benefit is disabled
 * (CacheTuning::capacityBenefit = false). The paper reports FW and BC
 * suffering most (47% / 22% under SC) and PRK not at all.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    DriverOptions no_capacity;
    no_capacity.tuning.capacityBenefit = false;

    for (const auto &workload : workloadZoo()) {
        sweep.add(workload, PolicyKind::Baseline);
        sweep.add(workload, PolicyKind::StaticBdi, no_capacity);
        sweep.add(workload, PolicyKind::StaticSc, no_capacity);
    }

    std::cout << "=== Figure 4: slowdown from decompression latency "
                 "alone (no capacity benefit) ===\n";
    printHeader({"BDI", "SC"});

    std::vector<double> bdi_all, sc_all;
    for (const auto &workload : workloadZoo()) {
        const auto &baseline = sweep.get(workload, PolicyKind::Baseline);
        const double bdi = speedupOver(
            baseline,
            sweep.get(workload, PolicyKind::StaticBdi, no_capacity));
        const double sc = speedupOver(
            baseline,
            sweep.get(workload, PolicyKind::StaticSc, no_capacity));
        bdi_all.push_back(bdi);
        sc_all.push_back(sc);
        printRow(workload.abbr, {bdi, sc});
    }
    printRow("gmean", {geomean(bdi_all), geomean(sc_all)});

    std::cout << "\nExpected shape (paper): all bars <= 1.0; SC hurts "
                 "much more than BDI; latency-tolerant workloads (PRK) "
                 "lose nothing.\n";
    return 0;
}
