/**
 * @file
 * Figure 6: the motivation for adaptivity — per-workload performance (a)
 * and energy (b) under Static-BDI, Static-SC and the adaptive LATTE-CC,
 * on the cache-sensitive workloads. The paper's point: statics swing
 * wildly (+48%..-52%, 0.76x..1.36x energy) while the adaptive scheme
 * captures the upside consistently.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);

    for (const auto *workload : workloadsByCategory(true)) {
        sweep.add(*workload, PolicyKind::Baseline);
        sweep.add(*workload, PolicyKind::StaticBdi);
        sweep.add(*workload, PolicyKind::StaticSc);
        sweep.add(*workload, PolicyKind::LatteCc);
    }

    std::cout << "=== Figure 6(a): speedup — Static-BDI / Static-SC / "
                 "LATTE-CC (C-Sens) ===\n";
    printHeader({"BDI", "SC", "LATTE"});
    std::vector<double> b, s, l;
    for (const auto *workload : workloadsByCategory(true)) {
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);
        const double bdi = speedupOver(
            base, sweep.get(*workload, PolicyKind::StaticBdi));
        const double sc = speedupOver(
            base, sweep.get(*workload, PolicyKind::StaticSc));
        const double latte = speedupOver(
            base, sweep.get(*workload, PolicyKind::LatteCc));
        b.push_back(bdi);
        s.push_back(sc);
        l.push_back(latte);
        printRow(workload->abbr, {bdi, sc, latte});
    }
    printRow("gmean", {geomean(b), geomean(s), geomean(l)});

    std::cout << "\n=== Figure 6(b): normalised energy ===\n";
    printHeader({"BDI", "SC", "LATTE"});
    std::vector<double> be, se, le;
    for (const auto *workload : workloadsByCategory(true)) {
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);
        const double base_mj = base.energy.totalMj();
        const double bdi =
            sweep.get(*workload, PolicyKind::StaticBdi)
                .energy.totalMj() / base_mj;
        const double sc =
            sweep.get(*workload, PolicyKind::StaticSc)
                .energy.totalMj() / base_mj;
        const double latte =
            sweep.get(*workload, PolicyKind::LatteCc)
                .energy.totalMj() / base_mj;
        be.push_back(bdi);
        se.push_back(sc);
        le.push_back(latte);
        printRow(workload->abbr, {bdi, sc, latte});
    }
    printRow("gmean", {geomean(be), geomean(se), geomean(le)});

    std::cout << "\nExpected shape (paper): statics vary widely per "
                 "workload; the adaptive column dominates or matches the "
                 "better static on each row.\n";
    return 0;
}
