/**
 * @file
 * Figure 14: where LATTE-CC's energy saving comes from, per C-Sens
 * workload: static/leakage energy saved by running shorter, data
 * movement (L2 + NoC + DRAM) saved by missing less, and the (small)
 * compression/decompression overhead paid for it. The paper attributes
 * 3.7% (static) + 4.2% (data movement) of the 10% average saving, with
 * comp/decomp overhead < 0.25% of GPU energy.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    declareGrid(sweep, {PolicyKind::LatteCc}, /*sensitive_only=*/true);

    std::cout << "=== Figure 14: LATTE-CC energy-saving breakdown "
                 "(% of baseline GPU energy) ===\n";
    printHeader({"static", "datamove", "core+L1", "cmp-ovh", "net"});

    std::vector<double> s_all, d_all, c_all, o_all, n_all;
    for (const auto *workload : workloadsByCategory(true)) {
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);
        const auto &latte = sweep.get(*workload, PolicyKind::LatteCc);
        const double base_mj = base.energy.totalMj();

        const double static_saving =
            100.0 * (base.energy.staticMj - latte.energy.staticMj) /
            base_mj;
        const double movement_saving =
            100.0 *
            (base.energy.dataMovementMj() -
             latte.energy.dataMovementMj()) /
            base_mj;
        const double core_saving =
            100.0 *
            ((base.energy.coreDynamicMj + base.energy.l1Mj) -
             (latte.energy.coreDynamicMj + latte.energy.l1Mj)) /
            base_mj;
        const double overhead =
            100.0 *
            (latte.energy.compressionMj - base.energy.compressionMj) /
            base_mj;
        const double net =
            100.0 * (base_mj - latte.energy.totalMj()) / base_mj;

        s_all.push_back(static_saving);
        d_all.push_back(movement_saving);
        c_all.push_back(core_saving);
        o_all.push_back(overhead);
        n_all.push_back(net);
        printRow(workload->abbr,
                 {static_saving, movement_saving, core_saving, overhead,
                  net},
                 10, 2);
    }

    auto mean = [](const std::vector<double> &v) {
        double sum = 0;
        for (const double x : v)
            sum += x;
        return sum / static_cast<double>(v.size());
    };
    printRow("avg",
             {mean(s_all), mean(d_all), mean(c_all), mean(o_all),
              mean(n_all)},
             10, 2);

    std::cout << "\nExpected shape (paper): static + data movement "
                 "dominate the saving; compression overhead is well "
                 "under 1% of GPU energy.\n";
    return 0;
}
