/**
 * @file
 * Figure 17 (Section V-D): why latency-tolerance awareness matters.
 * Adaptive-Hit-Count chases hit counts; Adaptive-CMP accounts for
 * decompression latency CMP-style but ignores GPU tolerance; LATTE-CC
 * uses both. Paper C-Sens averages: LATTE-CC +19%, Adaptive-Hit-Count
 * +15%, Adaptive-CMP +13% — with nearly identical miss reductions.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    const std::vector<PolicyKind> kinds = {PolicyKind::AdaptiveHitCount,
                                           PolicyKind::AdaptiveCmp,
                                           PolicyKind::LatteCc};
    declareGrid(sweep, kinds, /*sensitive_only=*/true);

    std::cout << "=== Figure 17: adaptive policies — speedup (left) and "
                 "miss reduction % (right) ===\n";
    printHeader({"A-Hit", "A-CMP", "LATTE", "mrA-Hit", "mrA-CMP",
                 "mrLATTE"});

    std::map<PolicyKind, std::vector<double>> speedups;
    std::map<PolicyKind, std::vector<double>> reductions;
    for (const auto *workload : workloadsByCategory(true)) {
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);
        std::vector<double> row;
        for (const PolicyKind kind : kinds) {
            const double speedup =
                speedupOver(base, sweep.get(*workload, kind));
            row.push_back(speedup);
            speedups[kind].push_back(speedup);
        }
        for (const PolicyKind kind : kinds) {
            const auto &result = sweep.get(*workload, kind);
            const double reduction =
                base.misses == 0
                    ? 0.0
                    : 100.0 * (1.0 -
                               static_cast<double>(result.misses) /
                                   static_cast<double>(base.misses));
            row.push_back(reduction);
            reductions[kind].push_back(reduction);
        }
        printRow(workload->abbr, row, 9, 2);
    }

    std::vector<double> means;
    for (const PolicyKind kind : kinds)
        means.push_back(geomean(speedups[kind]));
    for (const PolicyKind kind : kinds) {
        double sum = 0;
        for (const double v : reductions[kind])
            sum += v;
        means.push_back(sum /
                        static_cast<double>(reductions[kind].size()));
    }
    printRow("avg", means, 9, 2);

    std::cout << "\nExpected shape (paper): similar miss reductions "
                 "across all three, but LATTE-CC converts them into the "
                 "most speedup.\n";
    return 0;
}
