/**
 * @file
 * Figure 18 (Section V-E): LATTE-CC with BPC substituted for SC as the
 * high-capacity mode. The paper: the two variants perform similarly on
 * average, and BDI-BPC wins on the BPC-affine workloads (PF, MIS, CLR,
 * FW).
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);
    declareGrid(sweep, {PolicyKind::LatteCc, PolicyKind::LatteCcBdiBpc},
                /*sensitive_only=*/true);

    std::cout << "=== Figure 18: LATTE-CC vs LATTE-CC-BDI-BPC (C-Sens) "
                 "===\n";
    printHeader({"LATTE", "BDI-BPC"});

    std::vector<double> latte_all, bpc_all;
    for (const auto *workload : workloadsByCategory(true)) {
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);
        const double latte = speedupOver(
            base, sweep.get(*workload, PolicyKind::LatteCc));
        const double bdi_bpc = speedupOver(
            base, sweep.get(*workload, PolicyKind::LatteCcBdiBpc));
        latte_all.push_back(latte);
        bpc_all.push_back(bdi_bpc);
        printRow(workload->abbr, {latte, bdi_bpc});
    }
    printRow("gmean", {geomean(latte_all), geomean(bpc_all)});

    std::cout << "\nExpected shape (paper): similar averages; BDI-BPC "
                 "ahead on the BPC-affine set (PF, MIS, CLR, FW).\n";
    return 0;
}
