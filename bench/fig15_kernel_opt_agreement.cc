/**
 * @file
 * Figure 15: how often LATTE-CC's fine-grained decision agrees with the
 * Kernel-OPT oracle's per-kernel choice, and the performance delta
 * between them. Disagreement is not necessarily loss: for workloads
 * with intra-kernel phase changes (KM, SS, MM in the paper) LATTE-CC
 * beats the oracle precisely where it disagrees.
 */

#include "bench_util.hh"

using namespace latte;
using namespace latte::bench;

namespace
{

std::size_t
modeIndex(CompressorId mode)
{
    return static_cast<std::size_t>(mode);
}

} // namespace

int
main(int argc, char **argv)
{
    Sweep sweep(argc, argv);

    for (const auto *workload : workloadsByCategory(true)) {
        sweep.add(*workload, PolicyKind::Baseline);
        sweep.add(*workload, PolicyKind::LatteCc);
        sweep.add(*workload, PolicyKind::KernelOpt);
    }

    std::cout << "=== Figure 15: LATTE-CC vs Kernel-OPT — decision "
                 "agreement and performance delta ===\n";
    printHeader({"agree%", "latte", "k-opt", "delta%"});

    for (const auto *workload : workloadsByCategory(true)) {
        const auto &base = sweep.get(*workload, PolicyKind::Baseline);
        const auto &latte = sweep.get(*workload, PolicyKind::LatteCc);
        const auto &oracle =
            sweep.get(*workload, PolicyKind::KernelOpt);

        // Access-weighted agreement: per kernel, the fraction of
        // LATTE's accesses spent in the oracle's chosen mode.
        std::uint64_t agree = 0, total = 0;
        const std::size_t kernels =
            std::min(latte.kernels.size(),
                     oracle.kernelBestModes.size());
        for (std::size_t k = 0; k < kernels; ++k) {
            const auto &counts = latte.kernels[k].modeAccesses;
            for (std::size_t m = 0; m < counts.size(); ++m)
                total += counts[m];
            agree +=
                counts[modeIndex(oracle.kernelBestModes[k])];
        }
        const double agree_pct =
            total ? 100.0 * static_cast<double>(agree) /
                        static_cast<double>(total)
                  : 0.0;

        const double latte_speedup = speedupOver(base, latte);
        const double oracle_speedup = speedupOver(base, oracle);
        const double delta_pct =
            100.0 * (latte_speedup - oracle_speedup);

        printRow(workload->abbr,
                 {agree_pct, latte_speedup, oracle_speedup, delta_pct},
                 10, 2);
    }

    std::cout << "\nExpected shape (paper): high agreement for BC/DJK; "
                 "phase-changing workloads (KM/SS/MM) disagree *and* "
                 "beat the oracle (positive delta).\n";
    return 0;
}
