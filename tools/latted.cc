/**
 * @file
 * latted: the persistent sweep job daemon. Accepts SweepSpec jobs over
 * line-delimited JSON on a local AF_UNIX socket, executes them on the
 * ExperimentRunner thread pool, journals every job so a killed daemon
 * resumes its queue on restart, and streams progress events to
 * subscribed clients. latte_client is the matching CLI; see
 * docs/protocol.md for the wire format.
 *
 *   latted --state-dir runs/latted --cache-dir runs/cache -j 8
 */

#include <csignal>
#include <cstdlib>
#include <fstream>

#include <condition_variable>
#include <mutex>

#include "common/logging.hh"
#include "runner/arg_parse.hh"
#include "service/http_server.hh"
#include "service/socket_server.hh"

namespace
{

/** Blocks main() until a shutdown request or SIGINT/SIGTERM arrives. */
struct ShutdownLatch
{
    std::mutex mutex;
    std::condition_variable cv;
    bool requested = false;

    void
    request()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            requested = true;
        }
        cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return requested; });
    }
};

ShutdownLatch *g_latch = nullptr;

void
onSignal(int)
{
    if (g_latch)
        g_latch->request();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace latte;

    service::ServiceOptions options;
    std::string socket_path;
    std::string metrics_out;
    std::string http_addr;

    // latted takes its own flag set, not the full sweep CLI: a daemon
    // has no --json/--trace-out of its own — those belong to jobs.
    runner::ArgParser parser("latted");
    parser.beginGroup("daemon options");
    parser.add("--socket", "", "PATH",
               "AF_UNIX socket path (default <state-dir>/latted.sock)",
               [&](const std::string &v) { socket_path = v; });
    parser.add("--state-dir", "", "DIR",
               "job journal + results directory (default runs/latted)",
               [&](const std::string &v) { options.stateDir = v; });
    parser.add("--cache-dir", "", "DIR",
               "result cache shared with direct sweep runs",
               [&](const std::string &v) { options.cacheDir = v; });
    parser.add("--jobs", "-j", "N", "worker threads per job (0 = all cores)",
               [&](const std::string &v) {
                   options.threads =
                       static_cast<unsigned>(std::stoul(v));
               });
    parser.add("--quota", "", "N",
               "live jobs allowed per client (default 8)",
               [&](const std::string &v) {
                   options.clientQuota = std::stoul(v);
               });
    parser.add("--max-queue", "", "N",
               "queued-job cap across clients (default 256)",
               [&](const std::string &v) {
                   options.maxQueue = std::stoul(v);
               });
    parser.add("--metrics-out", "", "FILE",
               "write a Prometheus metrics snapshot here on exit",
               [&](const std::string &v) { metrics_out = v; });
    parser.add("--progress", "", "0|1",
               "runner progress lines on stderr (default 0)",
               [&](const std::string &v) {
                   options.progress = v != "0";
               });
    parser.add("--http-addr", "", "[HOST:]PORT",
               "serve GET /metrics, /healthz and /jobs over HTTP "
               "(127.0.0.1 unless HOST is given; off by default)",
               [&](const std::string &v) { http_addr = v; });
    parser.add("--log-level", "", "LEVEL",
               "stderr log threshold: error|warn|info|debug|trace "
               "(default info, or LATTE_LOG_LEVEL)",
               [&](const std::string &v) {
                   LogLevel level;
                   if (!logLevelFromName(v, level))
                       latte_fatal("latted: unknown log level '{}'", v);
                   setLogLevel(level);
               });
    parser.add("--log-json", "", nullptr,
               "emit log lines as JSON records (one object per line)",
               [&](const std::string &) { setLogJson(true); });
    parser.parse(argc, argv);
    if (argc > 1)
        latte_fatal("latted: unknown argument '{}' (try --help)",
                    argv[1]);

    if (options.stateDir.empty())
        options.stateDir = "runs/latted";
    if (socket_path.empty())
        socket_path = options.stateDir + "/latted.sock";

    service::SweepService sweep_service(options);
    service::RequestDispatcher dispatcher(sweep_service);
    service::SocketServer server(dispatcher, socket_path);

    ShutdownLatch latch;
    g_latch = &latch;
    dispatcher.onShutdown([&] { latch.request(); });
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::string error;
    if (!server.start(&error))
        latte_fatal("latted: {}", error);

    service::HttpServer http(http_addr.empty() ? "0" : http_addr);
    if (!http_addr.empty()) {
        service::registerServiceEndpoints(http, sweep_service);
        if (!http.start(&error))
            latte_fatal("latted: {}", error);
    }

    // The resolved configuration, logged once at startup so a journal
    // of the daemon's life starts with what it was actually running.
    const service::ServiceCounters startup = sweep_service.counters();
    latte_inform("latted: serving on {} (state {}, {} job{} recovered)",
                 socket_path, options.stateDir, startup.recovered,
                 startup.recovered == 1 ? "" : "s");
    latte_inform("latted: config: cache-dir='{}' threads={} "
                 "max-queue={} client-quota={} progress={}",
                 options.cacheDir, options.threads, options.maxQueue,
                 options.clientQuota, options.progress ? 1 : 0);
    if (!http_addr.empty())
        latte_inform("latted: http on '{}' port {} "
                     "(/metrics, /healthz, /jobs)",
                     http_addr, http.port());

    latch.wait();

    latte_inform("latted: shutting down");
    // Order matters: stop the scrape surface, wake blocked wait
    // requests, then tear down the socket (joins reader threads),
    // then destroy the service.
    http.stop();
    sweep_service.shutdown();
    server.stop();

    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        if (out)
            out << sweep_service.metricsPrometheus();
        else
            latte_warn("latted: cannot write {}", metrics_out);
    }
    return EXIT_SUCCESS;
}
