/**
 * @file
 * metrics_diff — the run-diff regression gate.
 *
 * Compares every numeric leaf of two result/metrics documents (result
 * JSON from --json, metric JSONL from --metrics-out, or a bench report
 * from --bench-out) and exits non-zero when any per-metric relative
 * delta exceeds its tolerance. CI runs it between the current build's
 * output and a committed (or freshly regenerated) reference to catch
 * silent result drift.
 *
 *   metrics_diff A.json B.json                 # exact compare
 *   metrics_diff A.json B.json --default-tol 0.02
 *   metrics_diff A.json B.json --tol energy=0.05 --tol wall_seconds=1
 *
 * Exit codes: 0 all deltas within tolerance, 1 violations found,
 * 2 usage / IO / parse errors.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runner/json.hh"

using latte::runner::Json;

namespace
{

struct ToleranceRule
{
    std::string substring; //!< matched against the flattened key
    double fraction;       //!< allowed relative delta
};

struct Options
{
    std::string pathA;
    std::string pathB;
    std::vector<ToleranceRule> rules;
    double defaultTol = 0.0;
    /** Absolute slack below which a delta never counts (noise floor). */
    double absEps = 1e-12;
    bool showAll = false;
};

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: metrics_diff <a.json> <b.json> [options]\n"
        "  --tol <substr>=<frac>  relative tolerance for metrics whose\n"
        "                         key contains <substr> (first match\n"
        "                         wins, in flag order)\n"
        "  --default-tol <frac>   tolerance for everything else "
        "(default 0)\n"
        "  --abs-eps <x>          ignore absolute deltas below x "
        "(default 1e-12)\n"
        "  --all                  print every compared metric, not just\n"
        "                         violations\n"
        "exit status: 0 clean, 1 tolerance violations, 2 errors\n",
        to);
}

bool
parseArgs(int argc, char **argv, Options &options)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };

        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--tol") {
            const char *text = next();
            if (!text)
                return false;
            const std::string spec = text;
            const std::size_t eq = spec.rfind('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr, "--tol wants <substr>=<frac>, got "
                                     "'%s'\n", spec.c_str());
                return false;
            }
            options.rules.push_back(
                {spec.substr(0, eq), std::stod(spec.substr(eq + 1))});
        } else if (arg == "--default-tol") {
            const char *text = next();
            if (!text)
                return false;
            options.defaultTol = std::stod(text);
        } else if (arg == "--abs-eps") {
            const char *text = next();
            if (!text)
                return false;
            options.absEps = std::stod(text);
        } else if (arg == "--all") {
            options.showAll = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return false;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        std::fprintf(stderr, "expected exactly two input files\n");
        return false;
    }
    options.pathA = positional[0];
    options.pathB = positional[1];
    return true;
}

/**
 * Load a document: a regular JSON file, or — when whole-file parsing
 * fails — a JSONL stream (--metrics-out), wrapped into one array so
 * both shapes flatten the same way.
 */
bool
loadDocument(const std::string &path, Json &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();

    std::string error;
    out = Json::parse(text.str(), &error);
    if (error.empty())
        return true;

    Json::Array lines;
    std::istringstream stream(text.str());
    std::string line;
    while (std::getline(stream, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::string line_error;
        Json value = Json::parse(line, &line_error);
        if (!line_error.empty()) {
            std::fprintf(stderr, "cannot parse '%s': %s\n", path.c_str(),
                         error.c_str());
            return false;
        }
        lines.push_back(std::move(value));
    }
    out = Json(std::move(lines));
    return true;
}

double
toleranceFor(const Options &options, const std::string &key)
{
    for (const ToleranceRule &rule : options.rules) {
        if (key.find(rule.substring) != std::string::npos)
            return rule.fraction;
    }
    return options.defaultTol;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    if (!parseArgs(argc, argv, options)) {
        usage(stderr);
        return 2;
    }

    Json a, b;
    if (!loadDocument(options.pathA, a) ||
        !loadDocument(options.pathB, b)) {
        return 2;
    }

    std::map<std::string, double> flat_a, flat_b;
    latte::runner::flattenNumeric(a, "", flat_a);
    latte::runner::flattenNumeric(b, "", flat_b);

    std::size_t compared = 0;
    std::size_t violations = 0;

    for (const auto &[key, va] : flat_a) {
        const auto it = flat_b.find(key);
        if (it == flat_b.end()) {
            ++violations;
            std::printf("MISSING  %-48s only in %s\n", key.c_str(),
                        options.pathA.c_str());
            continue;
        }
        const double vb = it->second;
        ++compared;

        const double delta = std::abs(va - vb);
        const double scale = std::max(std::abs(va), std::abs(vb));
        const double rel = scale > 0 ? delta / scale : 0.0;
        const double tol = toleranceFor(options, key);
        const bool violated = rel > tol && delta > options.absEps;

        if (violated) {
            ++violations;
            std::printf("FAIL     %-48s %.17g -> %.17g  (rel %.3g > "
                        "tol %.3g)\n",
                        key.c_str(), va, vb, rel, tol);
        } else if (options.showAll) {
            std::printf("ok       %-48s %.17g -> %.17g  (rel %.3g)\n",
                        key.c_str(), va, vb, rel);
        }
    }
    for (const auto &[key, vb] : flat_b) {
        if (!flat_a.count(key)) {
            ++violations;
            std::printf("MISSING  %-48s only in %s\n", key.c_str(),
                        options.pathB.c_str());
        }
    }

    std::printf("%zu metrics compared, %zu violation%s\n", compared,
                violations, violations == 1 ? "" : "s");
    return violations ? 1 : 0;
}
