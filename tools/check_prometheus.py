#!/usr/bin/env python3
"""Validate a Prometheus text exposition (format 0.0.4).

Usage:
    check_prometheus.py FILE
        Structural validation: every sample line parses, every sample
        belongs to the metric family of the most recent # TYPE line
        (histogram samples may append _bucket/_sum/_count), no family
        is declared twice, and all samples of a family form one
        contiguous block.

    check_prometheus.py --monotone BEFORE AFTER
        Additionally assert that every counter sample present in both
        scrapes (matched by name + label set) never decreases.

Exit status 0 on success; 1 with a message on the first violation.
No dependencies beyond the standard library, so CI can run it on a
bare runner.
"""

import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$")
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<kind>counter|gauge|histogram|summary|untyped)$")
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def fail(path, lineno, message):
    sys.exit(f"{path}:{lineno}: {message}")


def family_of(name):
    """The declared family a sample name belongs to."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    return float(text)


def check_file(path):
    """Validate one exposition; return {(name, labels): value}."""
    samples = {}
    declared = {}       # family -> kind
    closed = set()      # families whose sample block has ended
    current = None      # family of the open sample block

    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.rstrip("\n")
            if not line or line.startswith("# HELP"):
                continue
            if line.startswith("# TYPE"):
                match = TYPE_RE.match(line)
                if not match:
                    fail(path, lineno, f"malformed TYPE line: {line!r}")
                name = match.group("name")
                if name in declared:
                    fail(path, lineno, f"duplicate TYPE for {name}")
                declared[name] = match.group("kind")
                if current is not None:
                    closed.add(current)
                current = name
                continue
            if line.startswith("#"):
                fail(path, lineno, f"unknown comment: {line!r}")

            match = SAMPLE_RE.match(line)
            if not match:
                fail(path, lineno, f"malformed sample: {line!r}")
            name = match.group("name")
            family = family_of(name)
            if family not in declared:
                # A bare-name sample of a histogram family would have
                # family == name and fall through here too.
                fail(path, lineno, f"sample {name} has no TYPE line")
            if family != current:
                if family in closed:
                    fail(path, lineno,
                         f"samples of {family} are not contiguous")
                fail(path, lineno,
                     f"sample {name} appears under TYPE {current}")
            try:
                value = parse_value(match.group("value"))
            except ValueError:
                fail(path, lineno,
                     f"bad value {match.group('value')!r} for {name}")
            key = (name, match.group("labels") or "")
            if key in samples:
                fail(path, lineno, f"duplicate sample {key}")
            samples[key] = value

    if not samples:
        sys.exit(f"{path}: no samples found")
    # Counters must be finite and non-negative.
    for (name, labels), value in samples.items():
        if declared.get(family_of(name)) in ("counter", "histogram"):
            if not value >= 0:
                sys.exit(f"{path}: counter {name}{labels} = {value}")
    return samples, declared


def check_monotone(before_path, after_path):
    before, kinds = check_file(before_path)
    after, _ = check_file(after_path)
    for key, old in before.items():
        name, labels = key
        if kinds.get(family_of(name)) not in ("counter", "histogram"):
            continue
        if key not in after:
            # Labeled histogram buckets may legitimately appear only
            # later (new label sets); vanishing ones are a reset.
            sys.exit(f"{after_path}: counter {name}{labels} vanished")
        if after[key] < old:
            sys.exit(
                f"{after_path}: counter {name}{labels} went backwards "
                f"({old} -> {after[key]})")


def main(argv):
    if len(argv) == 2:
        check_file(argv[1])
    elif len(argv) == 4 and argv[1] == "--monotone":
        check_monotone(argv[2], argv[3])
    else:
        sys.exit(__doc__)


if __name__ == "__main__":
    main(sys.argv)
