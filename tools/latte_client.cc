/**
 * @file
 * latte_client: CLI for the latted sweep job daemon.
 *
 *   latte_client submit --spec spec.json [--priority N] [--wait]
 *   latte_client status --job N          latte_client cancel --job N
 *   latte_client wait   --job N [--out result.json]
 *   latte_client jobs | stats | metrics | ping | shutdown
 *   latte_client run    --spec spec.json [sweep options]
 *   latte_client spec   --workloads KM,SS --policies Baseline,LATTE-CC
 *
 * `run` executes the spec in-process through the Sweep front door —
 * the reference path: the daemon's result for the same spec is
 * byte-identical to `run --json`, which the CI service smoke pins with
 * cmp(1). `spec` emits a canonical SweepSpec JSON skeleton to stdout.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "runner/sweep.hh"

namespace
{

using latte::runner::Json;
using latte::runner::SweepSpec;

constexpr const char *kUsage =
    "usage: latte_client <command> [options]\n"
    "\n"
    "commands:\n"
    "  submit    submit a sweep job (--spec FILE [--priority N] [--wait"
    " [--out FILE]])\n"
    "  status    one job's state (--job N)\n"
    "  wait      block until a job finishes (--job N [--out FILE])\n"
    "  cancel    cancel a job (--job N)\n"
    "  jobs      list every job\n"
    "  stats     daemon counters\n"
    "  metrics   daemon Prometheus metrics\n"
    "  ping      liveness probe\n"
    "  shutdown  stop the daemon (queued jobs resume on restart)\n"
    "  run       execute a spec in-process (--spec FILE + sweep"
    " options)\n"
    "  spec      print a canonical SweepSpec JSON skeleton\n"
    "\n"
    "common options:\n"
    "  --socket PATH   daemon socket (default runs/latted/latted.sock)\n"
    "  --client NAME   client identity for quotas (default latte_client)"
    "\n";

/** One connected request/response exchange with the daemon. */
class DaemonConnection
{
  public:
    explicit DaemonConnection(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            latte_fatal("latte_client: socket: {}",
                        std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path))
            latte_fatal("latte_client: socket path too long: {}", path);
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0)
            latte_fatal("latte_client: cannot reach latted on {} ({})",
                        path, std::strerror(errno));
    }

    ~DaemonConnection()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    DaemonConnection(const DaemonConnection &) = delete;
    DaemonConnection &operator=(const DaemonConnection &) = delete;

    void
    send(const Json &request)
    {
        const std::string line = request.dump() + "\n";
        std::size_t off = 0;
        while (off < line.size()) {
            const ssize_t n = ::write(fd_, line.data() + off,
                                      line.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                latte_fatal("latte_client: write: {}",
                            std::strerror(errno));
            }
            off += static_cast<std::size_t>(n);
        }
    }

    /** Next line from the daemon, parsed. Fatal on disconnect. */
    Json
    receive()
    {
        for (;;) {
            const std::size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                const std::string line = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                std::string error;
                Json response = Json::parse(line, &error);
                if (!error.empty())
                    latte_fatal(
                        "latte_client: bad response line ({})", error);
                return response;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                latte_fatal("latte_client: daemon closed the "
                            "connection");
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** Send @p request; return the response, exiting on protocol errors. */
Json
roundTrip(const std::string &socket_path, const Json &request)
{
    DaemonConnection connection(socket_path);
    connection.send(request);
    const Json response = connection.receive();
    if (response.type() != Json::Type::Object ||
        !response.contains("ok"))
        latte_fatal("latte_client: malformed response: {}",
                    response.dump());
    if (!response.at("ok").asBool()) {
        const Json &error = response.at("error");
        latte_fatal("latte_client: {} ({})",
                    error.at("message").asString(),
                    error.at("code").asString());
    }
    return response;
}

SweepSpec
loadSpec(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        latte_fatal("latte_client: cannot read spec file {}", path);
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const Json json = Json::parse(text.str(), &error);
    if (!error.empty())
        latte_fatal("latte_client: {}: {}", path, error);
    SweepSpec spec;
    if (!SweepSpec::fromJson(json, spec, &error))
        latte_fatal("latte_client: {}: {}", path, error);
    return spec;
}

/** Copy the daemon's result document to @p out, byte for byte. */
void
copyResult(const std::string &result_path, const std::string &out_path)
{
    std::ifstream in(result_path, std::ios::binary);
    if (!in)
        latte_fatal("latte_client: cannot read result {}", result_path);
    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        latte_fatal("latte_client: cannot write {}", out_path);
    out << in.rdbuf();
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(text);
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace latte;

    if (argc < 2 || std::string(argv[1]) == "--help") {
        std::fputs(kUsage, argc < 2 ? stderr : stdout);
        return argc < 2 ? EXIT_FAILURE : EXIT_SUCCESS;
    }
    const std::string command = argv[1];
    // Shift the subcommand out so the flag parsers see a plain argv.
    for (int i = 1; i + 1 < argc; ++i)
        argv[i] = argv[i + 1];
    --argc;
    argv[argc] = nullptr;

    std::string socket_path = "runs/latted/latted.sock";
    std::string client = "latte_client";
    std::string spec_path;
    std::string out_path;
    std::uint64_t job_id = 0;
    std::int64_t priority = 0;
    bool wait_for_result = false;
    std::string spec_name, workloads, policies, seeds;

    runner::ArgParser parser("latte_client " + command);
    parser.beginGroup("client options");
    parser.add("--socket", "", "PATH", "daemon socket path",
               [&](const std::string &v) { socket_path = v; });
    parser.add("--client", "", "NAME", "client identity for quotas",
               [&](const std::string &v) { client = v; });
    parser.add("--spec", "", "FILE", "SweepSpec JSON file",
               [&](const std::string &v) { spec_path = v; });
    parser.add("--job", "", "N", "job id",
               [&](const std::string &v) { job_id = std::stoull(v); });
    parser.add("--priority", "", "N", "job priority (higher first)",
               [&](const std::string &v) { priority = std::stoll(v); });
    parser.add("--wait", "", "", "block until the job finishes",
               [&](const std::string &) { wait_for_result = true; });
    parser.add("--out", "", "FILE", "copy the result document here",
               [&](const std::string &v) { out_path = v; });
    parser.add("--name", "", "NAME", "spec name (spec command)",
               [&](const std::string &v) { spec_name = v; });
    parser.add("--workloads", "", "A,B", "workload list (spec command)",
               [&](const std::string &v) { workloads = v; });
    parser.add("--policies", "", "A,B", "policy list (spec command)",
               [&](const std::string &v) { policies = v; });
    parser.add("--seeds", "", "N,M", "seed list (spec command)",
               [&](const std::string &v) { seeds = v; });

    runner::SweepCliOptions sweep_cli;
    if (command == "run")
        parser.registerCommonFlags(sweep_cli);
    parser.parse(argc, argv);
    if (argc > 1)
        latte_fatal("latte_client: unknown argument '{}' (try --help)",
                    argv[1]);

    auto request = [&](const char *type) {
        Json::Object object;
        object["type"] = Json(type);
        object["client"] = Json(client);
        return object;
    };
    auto withJob = [&](const char *type) {
        if (job_id == 0)
            latte_fatal("latte_client: {} needs --job", type);
        Json::Object object = request(type);
        object["job"] = Json(job_id);
        return object;
    };
    auto printInfo = [](const Json &info) {
        std::cout << info.dump(2) << "\n";
    };
    auto finishWaited = [&](const Json &info) {
        // Exit nonzero unless the job completed, so scripts can gate
        // on the wait itself.
        const std::string &state = info.at("state").asString();
        if (state != "done")
            latte_fatal("latte_client: job {} ended {}{}",
                        info.at("id").asUint(), state,
                        info.at("error").asString().empty()
                            ? ""
                            : ": " + info.at("error").asString());
        if (!out_path.empty())
            copyResult(info.at("result_path").asString(), out_path);
    };

    if (command == "submit") {
        if (spec_path.empty())
            latte_fatal("latte_client: submit needs --spec");
        const SweepSpec spec = loadSpec(spec_path);
        Json::Object object = request("submit");
        object["spec"] = spec.toJson();
        object["priority"] =
            priority >= 0
                ? Json(static_cast<std::uint64_t>(priority))
                : Json(static_cast<double>(priority));
        const Json response = roundTrip(socket_path, Json(object));
        job_id = response.at("job").asUint();
        std::cout << "job " << job_id << "\n";
        if (wait_for_result) {
            const Json waited =
                roundTrip(socket_path, Json(withJob("wait")));
            printInfo(waited.at("info"));
            finishWaited(waited.at("info"));
        }
        return EXIT_SUCCESS;
    }
    if (command == "status") {
        const Json response =
            roundTrip(socket_path, Json(withJob("status")));
        printInfo(response.at("info"));
        return EXIT_SUCCESS;
    }
    if (command == "wait") {
        const Json response =
            roundTrip(socket_path, Json(withJob("wait")));
        printInfo(response.at("info"));
        finishWaited(response.at("info"));
        return EXIT_SUCCESS;
    }
    if (command == "cancel") {
        roundTrip(socket_path, Json(withJob("cancel")));
        std::cout << "cancelled " << job_id << "\n";
        return EXIT_SUCCESS;
    }
    if (command == "jobs") {
        const Json response =
            roundTrip(socket_path, Json(request("jobs")));
        std::cout << response.at("jobs").dump(2) << "\n";
        return EXIT_SUCCESS;
    }
    if (command == "stats") {
        const Json response =
            roundTrip(socket_path, Json(request("stats")));
        std::cout << response.at("stats").dump(2) << "\n";
        return EXIT_SUCCESS;
    }
    if (command == "metrics") {
        const Json response =
            roundTrip(socket_path, Json(request("metrics")));
        std::cout << response.at("prometheus").asString();
        return EXIT_SUCCESS;
    }
    if (command == "ping") {
        roundTrip(socket_path, Json(request("ping")));
        std::cout << "pong\n";
        return EXIT_SUCCESS;
    }
    if (command == "shutdown") {
        roundTrip(socket_path, Json(request("shutdown")));
        std::cout << "shutdown requested\n";
        return EXIT_SUCCESS;
    }
    if (command == "run") {
        if (spec_path.empty())
            latte_fatal("latte_client: run needs --spec");
        const SweepSpec spec = loadSpec(spec_path);
        const std::string problem = spec.validate();
        if (!problem.empty())
            latte_fatal("latte_client: invalid spec: {}", problem);
        runner::Sweep sweep(sweep_cli);
        sweep.add(spec);
        sweep.run();
        return EXIT_SUCCESS;
    }
    if (command == "spec") {
        SweepSpec spec;
        spec.name = spec_name;
        spec.workloads = splitList(workloads);
        spec.policies = policies.empty()
                            ? std::vector<std::string>{"Baseline"}
                            : splitList(policies);
        for (const std::string &seed : splitList(seeds))
            spec.seeds.push_back(std::stoull(seed));
        const std::string problem = spec.validate();
        if (!problem.empty())
            latte_fatal("latte_client: invalid spec: {}", problem);
        std::cout << spec.toJson().dump(2) << "\n";
        return EXIT_SUCCESS;
    }

    std::fputs(kUsage, stderr);
    latte_fatal("latte_client: unknown command '{}'", command);
}
